"""Declarative campaign specifications.

A :class:`CampaignSpec` describes the paper's workflow as data: a grid
of SoC design variants × threat-model overrides × verification
algorithms × depths.  :meth:`CampaignSpec.expand` turns the grid into a
deterministic list of serializable :class:`Job` records — the unit of
work the executor (:mod:`repro.campaign.runner`) hands to worker
processes.  Specs round-trip through JSON so a whole experiment table
(e.g. the paper's Sec. 4 variant table) is one file under version
control.

Hints
-----

Completed jobs feed a shared *hint cache*: the transient state variables
an Algorithm 1/2 run removed from ``S``, and the ``k`` a k-induction
search proved at.  Related jobs — same algorithm, threat model and depth
on another design variant — can seed their initial assumption sets from
those hints.  Hint flow is part of the expansion, not the scheduler:
``Job.seed_from`` names the donor jobs, and the executor never starts a
job before its donors finished, so serial and parallel runs see exactly
the same hints and return bit-identical results.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Mapping

from ..soc.config import SocConfig, expand_variants, named_config

__all__ = ["ALGORITHMS", "THREAT_TOGGLES", "Job", "CampaignSpec"]

#: The verification algorithms a job may run.
ALGORITHMS = ("alg1", "alg2", "bmc", "k-induction", "ift-baseline")

#: Algorithms whose property is fixed at two cycles: the depth axis does
#: not apply, so the grid emits exactly one job per (variant, threat).
DEPTH_FREE = frozenset({"alg1"})

#: Threat-model aspects a named override may strip (value must be
#: ``False``): run the same design under a weakened threat model.
THREAT_TOGGLES = frozenset({
    "invariants",
    "firmware_constraints",
    "spy_isolation",
    "victim_page_constraint",
})

HINT_POLICIES = ("off", "first", "chain")


@dataclass(frozen=True)
class Job:
    """One expanded cell of the campaign grid, fully serializable.

    ``design`` describes how the worker obtains a threat model:

    * ``{"kind": "soc", "base": <named config>, "overrides": {...}}`` —
      build the Pulpissimo-style SoC from a named base configuration
      with field overrides;
    * ``{"kind": "builder", "ref": "<registered or pkg.mod:fn>",
      "args": {...}}`` — call a design-builder function returning a
      :class:`~repro.upec.ThreatModel` (or an object exposing one).

    ``seed_from`` lists donor job indices whose hint payloads may seed
    this job's initial assumption set; the executor guarantees donors
    complete first, in serial and parallel runs alike.
    """

    index: int
    campaign: str
    variant: str
    variant_id: str
    design: dict
    threat: str
    threat_overrides: dict
    algorithm: str
    depth: int
    seed_from: tuple[int, ...] = ()
    timeout_seconds: float | None = None
    #: End-to-end wall-clock budget from submission, enforced by the
    #: fabric coordinator's lease sweep: a job nobody finished (or even
    #: started) within ``deadline_s`` reports a TIMEOUT verdict instead
    #: of wedging its campaign.  Distinct from ``timeout_seconds``, the
    #: per-attempt execution budget.  Scheduling policy, not part of
    #: the verdict-cache key.
    deadline_s: float | None = None
    #: Assignment attempts the fabric grants before a job that keeps
    #: losing its worker (death, execution timeout) goes terminal with
    #: a TIMEOUT/ERROR verdict.  None = the coordinator's default.
    #: Scheduling policy, not part of the verdict-cache key.
    max_attempts: int | None = None
    record_trace: bool = False
    #: Reduction-pipeline selection (bool or a PreprocessConfig field
    #: dict); verdicts are identical either way, so campaigns default
    #: to preprocessing on and ``--no-preprocess`` is the escape hatch.
    preprocess: bool = True
    #: Solver backend spec string (see :mod:`repro.sat.backends`);
    #: verdict-identical across backends, part of the job cache key.
    backend: str = "reference"
    #: Portfolio lanes to race per obligation ("" = no racing); a tuple
    #: of backend spec strings.
    portfolio: tuple = ()
    #: Cone fingerprint of this obligation (see
    #: :func:`repro.verify.delta.cone_fingerprint`), attached by delta
    #: planners.  NOT part of the whole-design verdict-cache key — it
    #: addresses the *alias* tier, so a design edit outside the cone
    #: still answers from cache.  None = no cone addressing.
    cone_key: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "campaign": self.campaign,
            "variant": self.variant,
            "variant_id": self.variant_id,
            "design": self.design,
            "threat": self.threat,
            "threat_overrides": self.threat_overrides,
            "algorithm": self.algorithm,
            "depth": self.depth,
            "seed_from": list(self.seed_from),
            "timeout_seconds": self.timeout_seconds,
            "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
            "record_trace": self.record_trace,
            "preprocess": self.preprocess,
            "backend": self.backend,
            "portfolio": list(self.portfolio),
            "cone_key": self.cone_key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            index=data["index"],
            campaign=data["campaign"],
            variant=data["variant"],
            variant_id=data["variant_id"],
            design=data["design"],
            threat=data["threat"],
            threat_overrides=data["threat_overrides"],
            algorithm=data["algorithm"],
            depth=data["depth"],
            seed_from=tuple(data.get("seed_from", ())),
            timeout_seconds=data.get("timeout_seconds"),
            deadline_s=data.get("deadline_s"),
            max_attempts=data.get("max_attempts"),
            record_trace=data.get("record_trace", False),
            preprocess=data.get("preprocess", True),
            backend=data.get("backend", "reference"),
            portfolio=tuple(data.get("portfolio", ())),
            cone_key=data.get("cone_key"),
        )

    def label(self) -> str:
        """Short display label: ``variant/threat alg@depth``."""
        threat = "" if self.threat == "default" else f"/{self.threat}"
        depth = "" if self.algorithm in DEPTH_FREE else f"@k{self.depth}"
        return f"{self.variant}{threat} {self.algorithm}{depth}"


def _normalized_algorithms(entries) -> list[tuple[str, list[int] | None]]:
    """``algorithms`` entries as (name, explicit depths or None)."""
    out: list[tuple[str, list[int] | None]] = []
    for entry in entries:
        if isinstance(entry, str):
            name, depths = entry, None
        else:
            name = entry["algorithm"]
            depths = [int(d) for d in entry["depths"]] \
                if "depths" in entry else None
        if name not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {name!r}; known: {', '.join(ALGORITHMS)}"
            )
        out.append((name, depths))
    return out


@dataclass
class CampaignSpec:
    """A declarative grid of verification jobs.

    Attributes:
        name: campaign name (report/artifact headers).
        base: named base :class:`SocConfig` for ``variants`` given as
            field-override mappings.
        base_overrides: overrides applied to ``base`` before the
            per-variant overrides (e.g. shrink every variant at once).
        variants: ordered mapping of variant name to either a
            ``SocConfig`` override mapping or a design-builder spec
            ``{"builder": ref, "args": {...}}``.
        threat_models: ordered mapping of threat-model name to toggles
            from :data:`THREAT_TOGGLES` (``{}`` = the full threat model).
        algorithms: list of algorithm names, or
            ``{"algorithm": name, "depths": [...]}`` entries overriding
            the shared depth axis per algorithm.
        depths: shared depth axis for depth-sensitive algorithms.
        hints: hint-cache policy: ``"off"`` (no sharing), ``"first"``
            (the first variant of each (algorithm, threat, depth) group
            seeds all others — maximal parallelism), or ``"chain"``
            (every job seeds from all earlier jobs of its group —
            maximal reuse, serializes the group).
        timeout_seconds: per-job wall-clock budget (enforced by the
            process executor; in-process serial runs cannot preempt).
        deadline_s: end-to-end per-job budget from submission (enforced
            by the fabric coordinator; see :class:`Job`).
        max_attempts: fabric retry budget per job (see :class:`Job`).
        record_traces: decode counterexample traces into results
            (enlarges the JSON artifact considerably).
        preprocess: reduction-pipeline selection for every job — True
            (default), False (the ``--no-preprocess`` escape hatch), or
            a :class:`~repro.sat.preprocess.PreprocessConfig` field
            dict.  Verdicts are identical either way.
        backend: solver backend spec string applied to every job (see
            :mod:`repro.sat.backends`); verdict-identical, cache-
            distinct.
        portfolio: backend spec strings to race per obligation on every
            job (empty = no racing).
    """

    name: str = "campaign"
    base: str = "FORMAL_TINY"
    base_overrides: dict = field(default_factory=dict)
    variants: dict = field(default_factory=lambda: {"baseline": {}})
    threat_models: dict = field(default_factory=lambda: {"default": {}})
    algorithms: list = field(default_factory=lambda: ["alg1"])
    depths: list = field(default_factory=lambda: [3])
    hints: str = "first"
    timeout_seconds: float | None = None
    deadline_s: float | None = None
    max_attempts: int | None = None
    record_traces: bool = False
    preprocess: object = True
    backend: str = "reference"
    portfolio: list = field(default_factory=list)

    def __post_init__(self) -> None:
        from ..sat.preprocess import PreprocessConfig

        # Validate, and normalize config objects to their JSON form so
        # specs/jobs stay serializable end to end (bools pass through).
        coerced = PreprocessConfig.coerce(self.preprocess)
        if not isinstance(self.preprocess, (bool, Mapping)):
            self.preprocess = coerced.to_dict()
        if self.hints not in HINT_POLICIES:
            raise ValueError(
                f"unknown hint policy {self.hints!r}; "
                f"known: {', '.join(HINT_POLICIES)}"
            )
        for threat, toggles in self.threat_models.items():
            unknown = set(toggles) - THREAT_TOGGLES
            if unknown:
                raise ValueError(
                    f"threat model {threat!r} strips unknown aspects: "
                    f"{', '.join(sorted(unknown))}"
                )
        _normalized_algorithms(self.algorithms)  # validates names
        from ..sat.backends import parse_backend_spec

        self.backend = parse_backend_spec(self.backend).canonical
        self.portfolio = [
            parse_backend_spec(lane).canonical for lane in self.portfolio
        ]

    # -- expansion -----------------------------------------------------------

    def resolve_variant(self, name: str) -> SocConfig | None:
        """The concrete config of a SoC variant (None for builders)."""
        overrides = self.variants[name]
        if "builder" in overrides:
            return None
        base = named_config(self.base).replace(**self.base_overrides)
        [(_, config)] = expand_variants(base, {name: overrides})
        return config

    def expand(self) -> list[Job]:
        """The deterministic job list of this grid.

        Variant-major ordering (variant → threat → algorithm → depth),
        indices 0..n-1.  ``seed_from`` links jobs of the same
        (algorithm, threat, depth) group across variants according to
        the hint policy.
        """
        jobs: list[Job] = []
        groups: dict[tuple, list[int]] = {}
        for variant, overrides in self.variants.items():
            if "builder" in overrides:
                design = {
                    "kind": "builder",
                    "ref": overrides["builder"],
                    "args": dict(overrides.get("args", {})),
                }
                args = ",".join(
                    f"{k}={v}" for k, v in sorted(design["args"].items())
                )
                variant_id = f"builder:{design['ref']}({args})"
            else:
                config = self.resolve_variant(variant)
                design = {
                    "kind": "soc",
                    "base": self.base,
                    "overrides": {**self.base_overrides, **overrides},
                }
                variant_id = config.variant_id()
            for threat, toggles in self.threat_models.items():
                for algorithm, explicit in \
                        _normalized_algorithms(self.algorithms):
                    if explicit is not None:
                        depths = explicit
                    elif algorithm in DEPTH_FREE:
                        depths = [1]
                    else:
                        depths = [int(d) for d in self.depths]
                    for depth in depths:
                        group = (algorithm, threat, depth)
                        earlier = groups.setdefault(group, [])
                        if self.hints == "off" or not earlier:
                            seed_from: tuple[int, ...] = ()
                        elif self.hints == "first":
                            seed_from = (earlier[0],)
                        else:  # chain
                            seed_from = tuple(earlier)
                        index = len(jobs)
                        jobs.append(Job(
                            index=index,
                            campaign=self.name,
                            variant=variant,
                            variant_id=variant_id,
                            design=design,
                            threat=threat,
                            threat_overrides=dict(toggles),
                            algorithm=algorithm,
                            depth=depth,
                            seed_from=seed_from,
                            timeout_seconds=self.timeout_seconds,
                            deadline_s=self.deadline_s,
                            max_attempts=self.max_attempts,
                            record_trace=self.record_traces,
                            preprocess=self.preprocess,
                            backend=self.backend,
                            portfolio=tuple(self.portfolio),
                        ))
                        earlier.append(index)
        return jobs

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base,
            "base_overrides": dict(self.base_overrides),
            "variants": {k: dict(v) for k, v in self.variants.items()},
            "threat_models": {
                k: dict(v) for k, v in self.threat_models.items()
            },
            "algorithms": list(self.algorithms),
            "depths": list(self.depths),
            "hints": self.hints,
            "timeout_seconds": self.timeout_seconds,
            "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
            "record_traces": self.record_traces,
            "preprocess": self.preprocess,
            "backend": self.backend,
            "portfolio": list(self.portfolio),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        known = {
            "name", "base", "base_overrides", "variants", "threat_models",
            "algorithms", "depths", "hints", "timeout_seconds",
            "deadline_s", "max_attempts",
            "record_traces", "preprocess", "backend", "portfolio",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec keys: {', '.join(sorted(unknown))}"
            )
        return cls(**{k: v for k, v in data.items()})

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        """Load a spec from a JSON file."""
        text = pathlib.Path(path).read_text()
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the spec as formatted JSON."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n"
        )
