"""64-way bitwise-parallel random simulation over AIG cones.

One Python integer carries one lane per bit, so a single pass over a
cone evaluates 64 random stimuli at once — the classic ATPG/SAT-sweep
trick.  Three consumers:

* **can-diverge pre-filtering** (the Algorithm 1/2 refinement loops):
  a closure candidate whose difference literal is already 1 in some
  lane that satisfies every environment assumption provably *can*
  diverge — its SAT model-enumeration call is skipped entirely and the
  lane doubles as a concrete witness (see
  :meth:`~repro.upec.miter.MiterSession.check`).
* **constant / equivalence candidate detection**: nodes with an all-0 /
  all-1 signature, or signature-equal node pairs, are candidates for
  merging; :func:`prove_constant` / :func:`prove_equivalent` confirm a
  candidate with a small cone-local SAT query (simulation alone is
  never trusted), so merges stay exact.
* the test suite's cross-checks of the bit-blaster.

Environment constraints (page-range restrictions, firmware assumptions,
input-equality macros) would reject almost every uniformly random lane,
so the simulator supports two repair mechanisms: **aliases** bind one
input's lanes to another literal's (how the miter enforces the
from-cycle-2 interface-equality macro structurally), and
:meth:`BitSim.satisfy` runs greedy per-cone rejection resampling —
re-drawing only the failed lanes of only the failing constraint's free
inputs, locking each satisfied cone's inputs before moving on.  Any
lane that survives *all* constraints is a genuine behaviour of the
constrained system; lanes that cannot be repaired are simply excluded
from the valid mask, so observations stay sound either way.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..sat.solver import Solver
from .aig import FALSE, TRUE, Aig
from .cnf import CnfEncoder

__all__ = [
    "BitSim",
    "constant_candidates",
    "equivalence_candidates",
    "prove_constant",
    "prove_equivalent",
]


class BitSim:
    """Lane-parallel random simulation with memoized node words.

    Args:
        aig: the graph (may keep growing; new nodes simulate on demand).
        num_patterns: lanes per word (64 fits one machine word of the
            int representation; more lanes simply widen the ints).
        seed: RNG seed — fixed by default so runs are reproducible.
    """

    def __init__(self, aig: Aig, num_patterns: int = 64, seed: int = 1):
        self.aig = aig
        self.num_patterns = num_patterns
        self.mask = (1 << num_patterns) - 1
        self._rng = random.Random(seed)
        #: input node -> packed word (random lanes drawn on first touch).
        self._inputs: dict[int, int] = {}
        #: input node -> source literal whose lanes it mirrors.
        self._alias: dict[int, int] = {}
        #: AND node -> packed word (cleared when inputs are resampled).
        self._gates: dict[int, int] = {0: 0}

    def _input_word(self, node: int) -> int:
        src = self._alias.get(node)
        if src is not None:
            return self.word(src)
        word = self._inputs.get(node)
        if word is None:
            word = self._rng.getrandbits(self.num_patterns)
            self._inputs[node] = word
        return word

    def alias(self, node: int, src_lit: int) -> None:
        """Bind an input node's lanes to another literal's (e.g. to make
        an input-equality macro hold by construction).  Survives
        resampling: the binding is by reference, not by value."""
        self._alias[node] = src_lit
        self._gates = {0: 0}

    def word(self, lit: int) -> int:
        """Packed lane values of an AIG literal (cone simulated on demand)."""
        if lit == TRUE:
            return self.mask
        if lit == FALSE:
            return 0
        node = lit >> 1
        aig = self.aig
        if aig.is_input(node):
            value = self._input_word(node)
        else:
            gates = self._gates
            value = gates.get(node)
            if value is None:
                mask = self.mask
                is_input = aig.is_input
                for n in aig.cone_nodes([lit]):
                    if is_input(n):
                        continue
                    if n in gates:
                        continue
                    f0, f1 = aig.fanins(n)
                    n0, n1 = f0 >> 1, f1 >> 1
                    v0 = gates[n0] if n0 in gates else (
                        self._input_word(n0) if is_input(n0) else gates[n0]
                    )
                    v1 = gates[n1] if n1 in gates else (
                        self._input_word(n1) if is_input(n1) else gates[n1]
                    )
                    if f0 & 1:
                        v0 ^= mask
                    if f1 & 1:
                        v1 ^= mask
                    gates[n] = v0 & v1
                value = gates[node]
        return value ^ (self.mask if lit & 1 else 0)

    def words(self, lits: Iterable[int]) -> list[int]:
        """Packed lane values for several literals."""
        return [self.word(lit) for lit in lits]

    def valid_lanes(self, constraint_lits: Iterable[int]) -> int:
        """Lane mask where *every* constraint literal evaluates to 1.

        A lane surviving all constraints is a genuine behaviour of the
        constrained system — observations made in it are sound
        witnesses, not heuristics.  Returns 0 as soon as the mask dies.
        """
        mask = self.mask
        for lit in constraint_lits:
            mask &= self.word(lit)
            if not mask:
                return 0
        return mask

    def satisfy(self, constraint_lits: Iterable[int], rounds: int = 8) -> int:
        """Steer the lanes toward satisfying all constraints; return the
        valid-lane mask.

        Greedy per-cone rejection resampling: constraints are processed
        in order; for each, the lanes where it fails redraw only the
        free (not yet locked, not aliased) inputs of its own cone, up to
        ``rounds`` times, then the cone's inputs are locked.  The final
        mask is re-verified against the full constraint list, so a
        nonzero return is exact regardless of how the search went.
        """
        lits = list(constraint_lits)
        if any(lit == FALSE for lit in lits):
            return 0
        aig = self.aig
        locked: set[int] = set()
        for lit in lits:
            if lit == TRUE:
                continue
            dead = ~self.word(lit) & self.mask
            if not dead:
                locked.update(
                    n for n in aig.cone_nodes([lit]) if aig.is_input(n)
                )
                continue
            cone_inputs = [
                n for n in aig.cone_nodes([lit]) if aig.is_input(n)
            ]
            free = [n for n in cone_inputs
                    if n not in locked and n not in self._alias]
            for _ in range(rounds):
                if not dead or not free:
                    break
                for node in free:
                    old = self._input_word(node)
                    fresh = self._rng.getrandbits(self.num_patterns)
                    self._inputs[node] = (old & ~dead) | (fresh & dead)
                self._gates = {0: 0}
                dead = ~self.word(lit) & self.mask
            locked.update(cone_inputs)
        return self.valid_lanes(lits)

    def reseed(self, base_values: dict[int, bool],
               jitter: Iterable[int]) -> None:
        """Rebase every lane on a known-good assignment, then randomize
        the ``jitter`` inputs in lanes 1 and up (lane 0 keeps the exact
        base assignment, so at least one lane stays valid).

        Used for model-guided exploration: a SAT model satisfies every
        constraint, and its neighborhood — same protected page, same
        starting state, different interface stimuli — is dense in
        further constrained behaviours, unlike uniform random space.
        Aliased inputs keep following their source.
        """
        mask = self.mask
        inputs = self._inputs
        for node, value in base_values.items():
            if node not in self._alias:
                inputs[node] = mask if value else 0
        for node in jitter:
            if node in self._alias:
                continue
            base = inputs.get(node, 0) & 1
            fresh = self._rng.getrandbits(self.num_patterns)
            inputs[node] = base | (fresh & mask & ~1)
        self._gates = {0: 0}

    def lane_value(self, lit: int, lane: int) -> bool:
        """Value of a literal in one lane."""
        return bool((self.word(lit) >> lane) & 1)


# -- candidate detection + exact proof ---------------------------------------


def constant_candidates(sim: BitSim, lits: Iterable[int]) -> dict[int, int]:
    """Literals whose signature is all-0 or all-1 (candidates only)."""
    out: dict[int, int] = {}
    for lit in lits:
        if lit <= 1:
            continue
        word = sim.word(lit)
        if word == 0:
            out[lit] = 0
        elif word == sim.mask:
            out[lit] = 1
    return out


def equivalence_candidates(
    sim: BitSim, lits: Iterable[int]
) -> list[list[int]]:
    """Groups of literals sharing a signature (complement-normalized).

    Each group lists literals whose lane words coincide — candidates
    for node merging.  A literal whose complement matches a group's
    signature joins as its complement, so XOR-reassociated duplicates
    are found too.
    """
    groups: dict[int, list[int]] = {}
    for lit in lits:
        if lit <= 1:
            continue
        word = sim.word(lit)
        if word & 1:  # normalize: lane-0 value False
            groups.setdefault(word ^ sim.mask, []).append(lit ^ 1)
        else:
            groups.setdefault(word, []).append(lit)
    return [group for group in groups.values() if len(group) > 1]


def prove_constant(aig: Aig, lit: int, value: int) -> bool:
    """Exact cone-local check that ``lit`` always evaluates to ``value``."""
    solver = Solver()
    encoder = CnfEncoder(aig, solver)
    goal = encoder.lit(lit if value == 0 else lit ^ 1)
    solver.add_clause([goal])
    return not solver.solve()


def prove_equivalent(aig: Aig, a: int, b: int) -> bool:
    """Exact cone-local check that two literals are equivalent."""
    if a == b:
        return True
    solver = Solver()
    encoder = CnfEncoder(aig, solver)
    goal = encoder.lit(aig.xor_(a, b))
    solver.add_clause([goal])
    return not solver.solve()
