"""Bulk random simulation of AIG cones.

Evaluates an AIG on many random input patterns at once using Python's
arbitrary-precision integers as parallel bit lanes.  Used by the test
suite to cross-check the bit-blaster against the word-level interpreter
and by candidate-invariant filtering.
"""

from __future__ import annotations

import random

from .aig import Aig

__all__ = ["random_patterns", "simulate_patterns"]


def random_patterns(
    aig: Aig, roots: list[int], num_patterns: int = 64, seed: int = 0
) -> dict[int, int]:
    """Random input assignment: node -> packed patterns (one bit per lane)."""
    rng = random.Random(seed)
    lanes_mask = (1 << num_patterns) - 1
    values: dict[int, int] = {}
    for node in aig.cone_nodes(roots):
        if aig.is_input(node):
            values[node] = rng.getrandbits(num_patterns) & lanes_mask
    return values


def simulate_patterns(
    aig: Aig,
    roots: list[int],
    input_values: dict[int, int],
    num_patterns: int = 64,
) -> list[int]:
    """Evaluate ``roots`` under packed patterns; results are masked to lanes."""
    lanes_mask = (1 << num_patterns) - 1
    raw = aig.evaluate(roots, input_values)
    return [v & lanes_mask for v in raw]
