"""And-Inverter Graph layer: strashed AIG, Tseitin CNF, bit-blasting."""

from .aig import FALSE, TRUE, Aig
from .bitblast import BitBlaster
from .cnf import CnfEncoder
from .sim import random_patterns, simulate_patterns

__all__ = ["Aig", "FALSE", "TRUE", "BitBlaster", "CnfEncoder",
           "random_patterns", "simulate_patterns"]
