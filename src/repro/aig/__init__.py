"""And-Inverter Graph layer: strashed AIG, Tseitin CNF, bit-blasting,
cone-of-influence reduction and bitwise-parallel simulation."""

from .aig import FALSE, TRUE, Aig
from .bitblast import BitBlaster
from .bitsim import (
    BitSim,
    constant_candidates,
    equivalence_candidates,
    prove_constant,
    prove_equivalent,
)
from .cnf import CnfEncoder
from .coi import ConeStats, CoiReduction, cone_stats, extract, reg_coi
from .sim import random_patterns, simulate_patterns

__all__ = ["Aig", "FALSE", "TRUE", "BitBlaster", "CnfEncoder",
           "BitSim", "constant_candidates", "equivalence_candidates",
           "prove_constant", "prove_equivalent",
           "ConeStats", "CoiReduction", "cone_stats", "extract", "reg_coi",
           "random_patterns", "simulate_patterns"]
