"""Cone-of-influence reduction.

Two levels of the same idea — logic that cannot influence the outputs
being proven is dead weight the SAT kernel should never see:

* **AIG level** — :func:`extract` copies only the transitive fanin cone
  of a set of root literals into a fresh graph (out-of-cone AND nodes
  vanish), returning the old→new literal map.  :func:`cone_stats`
  reports the reduction without building anything.
* **Circuit level** — :func:`reg_coi` computes the set of registers in
  the transitive fanin of property/assumption expressions through the
  next-state relations.  Unrolled sessions
  (:class:`~repro.formal.session.UnrollSession`) pass that set to the
  :class:`~repro.formal.unroller.Unroller` so out-of-cone registers
  ("latches" in AIG parlance) are not bit-blasted frame after frame —
  deepening happens against the reduced cone, and because the CNF
  encoder is cone-lazy too, the kernel never hears of them.

Both reductions are exact: dropped logic is unreferenced by every
constraint and goal, so SAT/UNSAT answers and model values of in-cone
literals are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..rtl.circuit import Circuit
from ..rtl.expr import Expr, Input, MemRead, RegRead, iter_nodes
from .aig import FALSE, TRUE, Aig

__all__ = ["ConeStats", "CoiReduction", "cone_stats", "extract", "reg_coi"]


@dataclass
class ConeStats:
    """Size of a cone relative to its graph."""

    total_nodes: int
    cone_nodes: int
    cone_inputs: int
    cone_ands: int

    @property
    def dropped_nodes(self) -> int:
        return self.total_nodes - self.cone_nodes


def cone_stats(aig: Aig, roots: Iterable[int]) -> ConeStats:
    """Measure the transitive fanin cone of ``roots`` (constant excluded)."""
    nodes = aig.cone_nodes(list(roots))
    inputs = sum(1 for n in nodes if aig.is_input(n))
    return ConeStats(
        total_nodes=aig.num_nodes(),
        cone_nodes=len(nodes) + 1,  # + constant node
        cone_inputs=inputs,
        cone_ands=len(nodes) - inputs,
    )


@dataclass
class CoiReduction:
    """A cone copied into a fresh graph.

    Attributes:
        aig: the reduced graph (cone nodes only).
        lit_map: old literal -> new literal for every in-cone literal
            (both polarities); :meth:`map` answers for any root.
        stats: reduction bookkeeping.
    """

    aig: Aig
    lit_map: dict[int, int]
    stats: ConeStats

    def map(self, old_lit: int) -> int:
        """The reduced-graph literal of an in-cone original literal."""
        if old_lit <= 1:
            return old_lit
        return self.lit_map[old_lit]


def extract(aig: Aig, roots: Iterable[int]) -> CoiReduction:
    """Copy the cone of ``roots`` into a fresh :class:`Aig`.

    Input nodes keep their debug names.  Out-of-cone nodes (AND gates
    and inputs alike) have no counterpart in the reduced graph.
    """
    roots = list(roots)
    reduced = Aig()
    node_map: dict[int, int] = {0: 0}
    for node in aig.cone_nodes(roots):
        if aig.is_input(node):
            new_lit = reduced.new_input(aig.name_of(node))
            node_map[node] = new_lit >> 1
        else:
            f0, f1 = aig.fanins(node)
            a = (node_map[f0 >> 1] << 1) | (f0 & 1)
            b = (node_map[f1 >> 1] << 1) | (f1 & 1)
            new_lit = reduced.and_(a, b)
            node_map[node] = new_lit >> 1
    lit_map: dict[int, int] = {}
    for old, new in node_map.items():
        lit_map[2 * old] = 2 * new
        lit_map[2 * old + 1] = 2 * new + 1
    lit_map[TRUE] = TRUE
    lit_map[FALSE] = FALSE
    inputs = sum(1 for n in node_map if n and aig.is_input(n))
    stats = ConeStats(
        total_nodes=aig.num_nodes(),
        cone_nodes=len(node_map),
        cone_inputs=inputs,
        cone_ands=len(node_map) - 1 - inputs,
    )
    return CoiReduction(aig=reduced, lit_map=lit_map, stats=stats)


def _direct_regs(exprs: Iterable[Expr]) -> set[str]:
    """Register names read anywhere in the given expression trees."""
    out: set[str] = set()
    for node in iter_nodes(exprs):
        if isinstance(node, RegRead):
            out.add(node.name)
        elif isinstance(node, (MemRead, Input)):
            continue
    return out


def reg_coi(circuit: Circuit, exprs: Iterable[Expr]) -> set[str]:
    """Registers in the transitive fanin of ``exprs``.

    The closure runs through next-state functions: a register is in the
    cone when the property reads it, or when an in-cone register's next
    state depends on it.  Registers outside the returned set can never
    influence the property at any unrolling depth.
    """
    deps: dict[str, set[str]] = {}
    for name, info in circuit.regs.items():
        deps[name] = _direct_regs([info.next]) if info.next is not None \
            else set()
    frontier = _direct_regs(exprs) & set(circuit.regs)
    cone: set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in cone:
            continue
        cone.add(name)
        frontier |= deps.get(name, set()) - cone
    return cone
