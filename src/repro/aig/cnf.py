"""Tseitin encoding of AIG cones into CNF, incrementally.

The :class:`CnfEncoder` keeps a persistent AIG-node-to-SAT-variable map
so that successive queries over the same graph (the iterations of
Algorithm 1/2) only emit clauses for nodes not yet encoded — learned
clauses in the incremental SAT solver stay valid throughout, because
encoding is purely additive.
"""

from __future__ import annotations

from ..sat.solver import Solver
from .aig import FALSE, TRUE, Aig

__all__ = ["CnfEncoder"]


class CnfEncoder:
    """Incremental Tseitin encoder from an :class:`Aig` into a solver."""

    __slots__ = ("aig", "solver", "_var_of", "_true_var")

    def __init__(self, aig: Aig, solver: Solver):
        self.aig = aig
        self.solver = solver
        self._var_of: dict[int, int] = {}
        self._true_var: int | None = None

    def _const_true_var(self) -> int:
        if self._true_var is None:
            self._true_var = self.solver.new_var()
            self.solver.add_clause([self._true_var])
        return self._true_var

    def lit(self, aig_lit: int) -> int:
        """DIMACS literal for an AIG literal, encoding its cone on demand."""
        if aig_lit == TRUE:
            return self._const_true_var()
        if aig_lit == FALSE:
            return -self._const_true_var()
        node = aig_lit >> 1
        var = self._var_of.get(node)
        if var is None:
            self._encode_cone(node)
            var = self._var_of[node]
        return -var if aig_lit & 1 else var

    def lits(self, aig_lits: list[int]) -> list[int]:
        """Encode a list of AIG literals."""
        return [self.lit(lit) for lit in aig_lits]

    def _encode_cone(self, root: int) -> None:
        aig = self.aig
        solver = self.solver
        var_of = self._var_of
        for node in aig.cone_nodes([2 * root]):
            if node in var_of:
                continue
            var = solver.new_var()
            var_of[node] = var
            if aig.is_input(node):
                continue
            f0, f1 = aig.fanins(node)
            a = self._fanin_dimacs(f0)
            b = self._fanin_dimacs(f1)
            # var <-> a & b
            solver.add_clause([-var, a])
            solver.add_clause([-var, b])
            solver.add_clause([var, -a, -b])

    def _fanin_dimacs(self, aig_lit: int) -> int:
        if aig_lit <= 1:
            true_var = self._const_true_var()
            return true_var if aig_lit == TRUE else -true_var
        var = self._var_of[aig_lit >> 1]
        return -var if aig_lit & 1 else var

    def assume_true(self, aig_lit: int) -> None:
        """Add a unit clause asserting an AIG literal."""
        self.solver.add_clause([self.lit(aig_lit)])

    def value(self, aig_lit: int) -> bool:
        """Model value of an AIG literal after a SAT answer.

        Nodes that were Tseitin-encoded read their value from the model.
        Nodes outside the encoded cone are completed consistently: inputs
        (unconstrained by the formula) default to False and gates are
        evaluated from their fanins — so decoded traces always satisfy
        the circuit's transition functions.
        """
        return self.values([aig_lit])[0]

    def values(self, aig_lits: list[int]) -> list[bool]:
        """Model values for several AIG literals (one cone traversal).

        Literals whose nodes are Tseitin-encoded read straight from the
        model; the cone walk only happens when some queried node lies
        outside the encoded region and must be completed consistently.
        """
        aig = self.aig
        solver = self.solver
        var_of = self._var_of
        if all(lit <= 1 or (lit >> 1) in var_of for lit in aig_lits):
            out = []
            for lit in aig_lits:
                if lit <= 1:
                    out.append(lit == TRUE)
                else:
                    out.append(solver.value(var_of[lit >> 1]) ^ bool(lit & 1))
            return out
        node_val: dict[int, bool] = {0: False}
        for node in aig.cone_nodes(aig_lits):
            var = var_of.get(node)
            if var is not None:
                node_val[node] = solver.value(var)
            elif aig.is_input(node):
                node_val[node] = False
            else:
                f0, f1 = aig.fanins(node)
                v0 = node_val[f0 >> 1] ^ bool(f0 & 1)
                v1 = node_val[f1 >> 1] ^ bool(f1 & 1)
                node_val[node] = v0 and v1
        return [node_val[lit >> 1] ^ bool(lit & 1) for lit in aig_lits]
