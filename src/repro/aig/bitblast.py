"""Bit-blasting: lowering word-level RTL expressions to AIG bit vectors.

Every :class:`~repro.rtl.expr.Expr` becomes an LSB-first list of AIG
literals.  The leaf environment (what register reads and inputs map to)
is supplied by the caller — the symbolic unroller binds them to
per-frame variables, so the same lowering code serves single-instance
BMC, k-induction, and the 2-safety UPEC miter.
"""

from __future__ import annotations

from ..rtl.expr import Const, Expr, Input, MemRead, Op, RegRead, topo_sort
from .aig import FALSE, TRUE, Aig

__all__ = ["BitBlaster"]


class BitBlaster:
    """Lower expressions into an :class:`Aig` against a leaf environment.

    Args:
        aig: target graph.
        leaves: mapping from leaf key to bit vector.  Keys are
            ``("in", name)`` for primary inputs and ``("reg", name)`` for
            register reads.
    """

    __slots__ = ("aig", "leaves", "_cache")

    def __init__(self, aig: Aig, leaves: dict[tuple[str, str], list[int]]):
        self.aig = aig
        self.leaves = leaves
        self._cache: dict[int, list[int]] = {}

    def vec(self, expr: Expr) -> list[int]:
        """Bit vector (LSB first) for ``expr``, lowering its cone on demand."""
        cached = self._cache.get(expr.uid)
        if cached is not None:
            return cached
        for node in topo_sort([expr]):
            if node.uid not in self._cache:
                self._cache[node.uid] = self._lower(node)
        return self._cache[expr.uid]

    def bit(self, expr: Expr) -> int:
        """Single AIG literal for a 1-bit expression."""
        if expr.width != 1:
            raise ValueError(f"expected 1-bit expression, got width {expr.width}")
        return self.vec(expr)[0]

    # -- lowering ------------------------------------------------------------

    def _lower(self, node: Expr) -> list[int]:
        aig = self.aig
        if isinstance(node, Const):
            return aig.const_vec(node.value, node.width)
        if isinstance(node, Input):
            try:
                return self._leaf(("in", node.name), node.width)
            except KeyError:
                raise KeyError(f"no binding for input {node.name!r}") from None
        if isinstance(node, RegRead):
            try:
                return self._leaf(("reg", node.name), node.width)
            except KeyError:
                raise KeyError(f"no binding for register {node.name!r}") from None
        if isinstance(node, MemRead):
            raise NotImplementedError(
                "behavioural memories cannot be bit-blasted; build formal "
                "configurations with RegisterFileMemory instead"
            )
        assert isinstance(node, Op)
        args = [self._cache[c.uid] for c in node.operands]
        return self._lower_op(node, args)

    def _leaf(self, key: tuple[str, str], width: int) -> list[int]:
        vec = self.leaves[key]
        if len(vec) != width:
            raise ValueError(
                f"leaf {key} bound to {len(vec)} bits, expression needs {width}"
            )
        return vec

    def _lower_op(self, node: Op, args: list[list[int]]) -> list[int]:
        aig = self.aig
        kind = node.kind
        if kind == "NOT":
            return [bit ^ 1 for bit in args[0]]
        if kind == "AND":
            return [aig.and_(a, b) for a, b in zip(args[0], args[1])]
        if kind == "OR":
            return [aig.or_(a, b) for a, b in zip(args[0], args[1])]
        if kind == "XOR":
            return [aig.xor_(a, b) for a, b in zip(args[0], args[1])]
        if kind == "ADD":
            return self._adder(args[0], args[1], carry_in=FALSE)
        if kind == "SUB":
            return self._adder(args[0], [b ^ 1 for b in args[1]], carry_in=TRUE)
        if kind == "MUL":
            return self._multiplier(args[0], args[1])
        if kind == "SHL":
            return self._shifter(args[0], args[1], node, left=True, arith=False)
        if kind == "LSHR":
            return self._shifter(args[0], args[1], node, left=False, arith=False)
        if kind == "ASHR":
            return self._shifter(args[0], args[1], node, left=False, arith=True)
        if kind == "EQ":
            return [aig.equal_vec(args[0], args[1])]
        if kind == "ULT":
            return [self._less_than(args[0], args[1], signed=False, or_equal=False)]
        if kind == "ULE":
            return [self._less_than(args[0], args[1], signed=False, or_equal=True)]
        if kind == "SLT":
            return [self._less_than(args[0], args[1], signed=True, or_equal=False)]
        if kind == "MUX":
            return aig.mux_vec(args[0][0], args[1], args[2])
        if kind == "CAT":
            out: list[int] = []
            for part in reversed(args):  # first operand is most significant
                out.extend(part)
            return out
        if kind == "SLICE":
            hi, lo = node.params
            return args[0][lo : hi + 1]
        if kind == "ZEXT":
            return args[0] + [FALSE] * (node.width - len(args[0]))
        if kind == "SEXT":
            sign = args[0][-1]
            return args[0] + [sign] * (node.width - len(args[0]))
        if kind == "RED_OR":
            return [aig.or_many(args[0])]
        if kind == "RED_AND":
            return [aig.and_many(args[0])]
        if kind == "RED_XOR":
            out = FALSE
            for bit in args[0]:
                out = aig.xor_(out, bit)
            return [out]
        raise NotImplementedError(f"unknown op kind {kind}")

    # -- arithmetic helpers ------------------------------------------------------

    def _adder(self, xs: list[int], ys: list[int], carry_in: int) -> list[int]:
        aig = self.aig
        out: list[int] = []
        carry = carry_in
        for x, y in zip(xs, ys):
            xor_xy = aig.xor_(x, y)
            out.append(aig.xor_(xor_xy, carry))
            carry = aig.or_(aig.and_(x, y), aig.and_(xor_xy, carry))
        return out

    def _multiplier(self, xs: list[int], ys: list[int]) -> list[int]:
        aig = self.aig
        width = len(xs)
        acc = aig.const_vec(0, width)
        for i, y in enumerate(ys):
            partial = [FALSE] * i + [aig.and_(x, y) for x in xs[: width - i]]
            acc = self._adder(acc, partial, carry_in=FALSE)
        return acc

    def _shifter(
        self, xs: list[int], amount: list[int], node: Op, left: bool, arith: bool
    ) -> list[int]:
        """Barrel shifter: mux ladder over the shift-amount bits."""
        aig = self.aig
        width = len(xs)
        fill = xs[-1] if arith else FALSE
        current = list(xs)
        for bit_index, sel in enumerate(amount):
            shift = 1 << bit_index
            if shift >= width:
                # Shifting by >= width clears (or saturates to sign fill).
                shifted = [fill] * width
            elif left:
                shifted = [FALSE] * shift + current[: width - shift]
            else:
                shifted = current[shift:] + [fill] * shift
            current = aig.mux_vec(sel, shifted, current)
        return current

    def _less_than(
        self, xs: list[int], ys: list[int], signed: bool, or_equal: bool
    ) -> int:
        aig = self.aig
        if signed:
            # Flip sign bits to map signed comparison onto unsigned.
            xs = xs[:-1] + [xs[-1] ^ 1]
            ys = ys[:-1] + [ys[-1] ^ 1]
        # x < y  <=>  borrow out of (x - y)
        carry = TRUE
        for x, y in zip(xs, ys):
            y_n = y ^ 1
            xor_xy = aig.xor_(x, y_n)
            carry = aig.or_(aig.and_(x, y_n), aig.and_(xor_xy, carry))
        less = carry ^ 1
        if not or_equal:
            return less
        return aig.or_(less, aig.equal_vec(xs, ys))
