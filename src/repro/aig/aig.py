"""And-Inverter Graph (AIG) with structural hashing.

The AIG is the bit-level representation produced by the bit-blaster and
consumed by the CNF encoder.  Structural hashing (strashing) plus local
simplification rules mean that when the UPEC-SSC miter shares variables
between its two design instances, the duplicated logic collapses onto a
single copy and only the *difference cone* — logic actually influenced by
the confidential data — survives.  This mirrors how commercial IPC
engines keep 2-safety proofs tractable (Sec. 3.2 of the paper).

Literal encoding: literal ``2*n`` is node ``n``, literal ``2*n+1`` is its
complement.  Node 0 is the constant FALSE, so ``FALSE = 0`` and
``TRUE = 1``.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["Aig", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1


class Aig:
    """A structurally hashed and-inverter graph.

    Node storage is flat parallel arrays behind ``__slots__`` and the
    strash table is keyed by a single packed integer — ``and_`` is the
    hottest call in every formal flow (millions of lookups per unrolled
    miter), so per-node allocation is kept to the two fanin appends.
    """

    __slots__ = ("_fanin0", "_fanin1", "_is_input", "_names", "_strash",
                 "_n_inputs")

    def __init__(self):
        # Parallel arrays of fanin literals; index 0 is the constant node.
        self._fanin0: list[int] = [0]
        self._fanin1: list[int] = [0]
        self._is_input: list[bool] = [False]
        self._names: dict[int, str] = {}
        # Strash key: (a << 40) | b with a <= b; literals stay far below
        # 2**40 (a trillion-node graph would exhaust memory first), so
        # the packing is collision-free and hashes as a plain int.
        self._strash: dict[int, int] = {}
        self._n_inputs = 0

    # -- construction -----------------------------------------------------

    def new_input(self, name: str | None = None) -> int:
        """Create a primary input node; returns its positive literal."""
        node = len(self._fanin0)
        self._fanin0.append(0)
        self._fanin1.append(0)
        self._is_input.append(True)
        self._n_inputs += 1
        if name is not None:
            self._names[node] = name
        return 2 * node

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with simplification and strashing."""
        # Constant and trivial cases.
        if a == FALSE or b == FALSE or a == (b ^ 1):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a << 40) | b
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanin0)
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._is_input.append(False)
            self._strash[key] = node
        return 2 * node

    @staticmethod
    def not_(a: int) -> int:
        """Complement a literal."""
        return a ^ 1

    def or_(self, a: int, b: int) -> int:
        """OR of two literals."""
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor_(self, a: int, b: int) -> int:
        """XOR of two literals."""
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux_(self, sel: int, if_true: int, if_false: int) -> int:
        """2:1 mux of literals."""
        if sel == TRUE:
            return if_true
        if sel == FALSE:
            return if_false
        if if_true == if_false:
            return if_true
        return self.or_(self.and_(sel, if_true), self.and_(sel ^ 1, if_false))

    def eq_(self, a: int, b: int) -> int:
        """XNOR (equality) of two literals."""
        return self.xor_(a, b) ^ 1

    def and_many(self, lits: Iterable[int]) -> int:
        """AND-reduce an iterable of literals (TRUE if empty)."""
        out = TRUE
        for lit in lits:
            out = self.and_(out, lit)
        return out

    def or_many(self, lits: Iterable[int]) -> int:
        """OR-reduce an iterable of literals (FALSE if empty)."""
        out = FALSE
        for lit in lits:
            out = self.or_(out, lit)
        return out

    def implies_(self, a: int, b: int) -> int:
        """Implication ``!a | b``."""
        return self.or_(a ^ 1, b)

    # -- vector helpers (LSB-first lists of literals) ----------------------

    def equal_vec(self, xs: list[int], ys: list[int]) -> int:
        """Single literal: all corresponding bits equal."""
        if len(xs) != len(ys):
            raise ValueError("vector width mismatch")
        return self.and_many(self.eq_(x, y) for x, y in zip(xs, ys))

    def diff_vec(self, xs: list[int], ys: list[int]) -> int:
        """Single literal: some corresponding bits differ."""
        return self.equal_vec(xs, ys) ^ 1

    def const_vec(self, value: int, width: int) -> list[int]:
        """Bit vector of a constant, LSB first."""
        return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]

    def input_vec(self, name: str, width: int) -> list[int]:
        """Vector of fresh inputs named ``name[i]``."""
        return [self.new_input(f"{name}[{i}]") for i in range(width)]

    def mux_vec(self, sel: int, if_true: list[int], if_false: list[int]) -> list[int]:
        """Element-wise 2:1 mux of two vectors."""
        if len(if_true) != len(if_false):
            raise ValueError("vector width mismatch")
        return [self.mux_(sel, t, f) for t, f in zip(if_true, if_false)]

    # -- inspection --------------------------------------------------------

    def num_nodes(self) -> int:
        """Total node count, including the constant and inputs."""
        return len(self._fanin0)

    def num_inputs(self) -> int:
        """Count of primary inputs."""
        return self._n_inputs

    def num_ands(self) -> int:
        """Count of AND gates (O(1): inputs are counted at creation)."""
        return len(self._fanin0) - 1 - self._n_inputs

    def is_input(self, node: int) -> bool:
        """Whether node index ``node`` is a primary input."""
        return self._is_input[node]

    def fanins(self, node: int) -> tuple[int, int]:
        """Fanin literals of an AND node."""
        return self._fanin0[node], self._fanin1[node]

    def name_of(self, node: int) -> str | None:
        """Debug name of an input node, if assigned."""
        return self._names.get(node)

    def cone_nodes(self, roots: Iterable[int]) -> list[int]:
        """Node indices in the transitive fanin of ``roots`` (topological).

        The constant node is excluded; inputs appear before gates that use
        them.
        """
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(lit >> 1, False) for lit in roots]
        fanin0, fanin1 = self._fanin0, self._fanin1
        is_input = self._is_input
        while stack:
            node, expanded = stack.pop()
            if node == 0:
                continue
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            if not is_input[node]:
                stack.append((fanin0[node] >> 1, False))
                stack.append((fanin1[node] >> 1, False))
        return order

    def evaluate(self, roots: list[int], input_values: dict[int, int]) -> list[int]:
        """Evaluate literals under an input assignment (node -> 0/1).

        Values may be multi-bit integers for parallel pattern simulation;
        bitwise semantics apply (see :mod:`repro.aig.sim`).
        """
        values: dict[int, int] = {0: 0}
        mask_all = -1
        for node in self.cone_nodes(roots):
            if self._is_input[node]:
                values[node] = input_values.get(node, 0)
            else:
                f0, f1 = self._fanin0[node], self._fanin1[node]
                v0 = values[f0 >> 1] ^ (mask_all if f0 & 1 else 0)
                v1 = values[f1 >> 1] ^ (mask_all if f1 & 1 else 0)
                values[node] = v0 & v1
        out = []
        for lit in roots:
            v = values.get(lit >> 1, 0)
            out.append(v ^ (mask_all if lit & 1 else 0))
        return out
