"""Coordinator bookkeeping: the lease table and the job queue.

Pure data structures — no sockets, no clocks of their own (callers pass
``now``), so dead-worker detection, re-queue idempotency and the
locality-aware stealing policy are unit-testable without a network.

Leases
------

A worker holds a *lease* that its heartbeats renew.  A worker whose
lease expires (or whose connection drops) is declared dead: its
in-flight job is re-queued and its backlog redistributed.  Because jobs
are keyed by their content address (the PR-3 verdict-cache key), a
re-queued job that the presumed-dead worker eventually answers anyway
is folded in **idempotently** — the first result wins, the duplicate
only bumps a counter.

Scheduling
----------

Each registered worker owns a backlog (a deque of job keys); jobs are
*placed* on the worker most likely to have the design warm (same
``variant_id`` as the worker's last assignment), falling back to the
shortest backlog.  A worker that runs dry *steals* from the back of the
longest peer backlog — locality-aware in that a matching-variant entry
anywhere in the victim's backlog is preferred over its tail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["WorkerRecord", "LeaseTable", "JobEntry", "JobQueue"]


# -- leases -------------------------------------------------------------------


@dataclass
class WorkerRecord:
    """One registered worker and its counters."""

    worker_id: int
    name: str
    address: str
    lease_deadline: float
    registered_at: float
    state: str = "idle"  # "idle" | "busy"
    inflight_key: str | None = None
    last_variant: str | None = None
    completed: int = 0
    cache_hits: int = 0
    steals: int = 0
    duplicates: int = 0

    @property
    def busy(self) -> bool:
        return self.state == "busy"

    def status(self, now: float) -> dict:
        """JSON-ready per-worker counters for the ``status`` op."""
        return {
            "name": self.name,
            "address": self.address,
            "state": self.state,
            "inflight": self.inflight_key,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "steals": self.steals,
            "duplicates": self.duplicates,
            "last_variant": self.last_variant,
            "lease_remaining_s": round(self.lease_deadline - now, 3),
            "uptime_s": round(now - self.registered_at, 3),
        }


class LeaseTable:
    """Workers by id, with heartbeat leases."""

    def __init__(self, lease_seconds: float = 15.0):
        self.lease_seconds = lease_seconds
        self._workers: dict[int, WorkerRecord] = {}
        self._next_id = 1
        self.dead = 0
        self.departed = 0

    def register(self, name: str, address: str, now: float) -> WorkerRecord:
        record = WorkerRecord(
            worker_id=self._next_id,
            name=name,
            address=address,
            lease_deadline=now + self.lease_seconds,
            registered_at=now,
        )
        self._next_id += 1
        self._workers[record.worker_id] = record
        return record

    def get(self, worker_id: int) -> WorkerRecord | None:
        return self._workers.get(worker_id)

    def renew(self, worker_id: int, now: float) -> WorkerRecord | None:
        record = self._workers.get(worker_id)
        if record is not None:
            record.lease_deadline = now + self.lease_seconds
        return record

    def expired(self, now: float) -> list[WorkerRecord]:
        """Workers whose lease lapsed (not yet removed)."""
        return [w for w in self._workers.values()
                if w.lease_deadline <= now]

    def remove(self, worker_id: int, dead: bool) -> WorkerRecord | None:
        """Drop a worker; ``dead`` distinguishes crash from goodbye."""
        record = self._workers.pop(worker_id, None)
        if record is not None:
            if dead:
                self.dead += 1
            else:
                self.departed += 1
        return record

    def workers(self) -> list[WorkerRecord]:
        return list(self._workers.values())

    def idle_workers(self) -> list[WorkerRecord]:
        return [w for w in self._workers.values() if not w.busy]

    def next_deadline(self) -> float | None:
        """The soonest lease expiry (None with no workers)."""
        if not self._workers:
            return None
        return min(w.lease_deadline for w in self._workers.values())

    def __len__(self) -> int:
        return len(self._workers)


# -- the job queue ------------------------------------------------------------


@dataclass
class JobEntry:
    """One submitted job, identified by its content key."""

    key: str
    job: dict
    hints: list
    variant: str
    cacheable: bool
    submitted_at: float
    #: Clients awaiting this job's result, as opaque waiter handles
    #: (the coordinator uses ``(connection, tag)`` pairs).
    waiters: list = field(default_factory=list)
    state: str = "queued"  # "queued" | "assigned" | "done" | "expired"
    assigned_to: int | None = None
    deadline: float | None = None
    requeues: int = 0
    #: Assignment attempts so far (bumped by :meth:`JobQueue.assign`).
    attempts: int = 0
    #: Worker *names* this entry already failed on (death/timeout/
    #: reject) — placement avoids them so a retry lands somewhere else.
    #: Names (not ids) because they survive a coordinator restart: a
    #: re-registering worker gets a fresh id but keeps its ``--name``.
    failed_on: set = field(default_factory=set)
    #: Wall-clock time of the *first* submit (``time.time()``), kept so
    #: a recovered coordinator restores the ``deadline_s`` clock instead
    #: of restarting it.  None for entries that predate the field.
    submitted_wall: float | None = None
    assigned_at: float | None = None
    #: Absolute wall-clock cutoff from the job's ``deadline_s`` —
    #: end-to-end from submit, unlike the per-attempt execution timeout.
    deadline_at: float | None = None

    @property
    def timeout_seconds(self) -> float | None:
        return self.job.get("timeout_seconds")

    @property
    def deadline_s(self) -> float | None:
        return self.job.get("deadline_s")

    @property
    def max_attempts(self) -> int | None:
        return self.job.get("max_attempts")


class JobQueue:
    """Pending jobs across per-worker backlogs plus an unassigned pool.

    The unassigned pool holds work submitted while no worker is
    registered; it drains the moment one enrols.
    """

    def __init__(self):
        self.entries: dict[str, JobEntry] = {}
        self._backlogs: dict[int, deque[str]] = {}
        self._unassigned: deque[str] = deque()
        self.steals = 0
        self.requeues = 0

    # -- worker lifecycle ----------------------------------------------------

    def add_worker(self, worker_id: int) -> None:
        self._backlogs.setdefault(worker_id, deque())

    def drop_worker(self, worker_id: int) -> list[str]:
        """Remove a worker's backlog, returning its queued keys."""
        backlog = self._backlogs.pop(worker_id, deque())
        return list(backlog)

    # -- placement -----------------------------------------------------------

    def _target_backlog(self, entry: JobEntry, leases: LeaseTable) -> \
            deque | None:
        workers = [w for w in leases.workers()
                   if w.worker_id in self._backlogs]
        if not workers:
            return None
        # Retry policy: avoid workers this entry already failed on —
        # but only while alternatives exist (never wedge a one-worker
        # fabric on a retry).  Matching is by name: ids are reissued
        # per incarnation, names follow the worker across restarts.
        fresh = [w for w in workers if w.name not in entry.failed_on]
        workers = fresh or workers
        # Locality first: a worker whose last assignment shares the
        # design keeps its caches (disk verdict store, OS page cache,
        # eventually warm sessions) hot for this variant.
        matching = [w for w in workers if w.last_variant == entry.variant]
        pool = matching or workers
        best = min(pool, key=lambda w: (len(self._backlogs[w.worker_id]),
                                        w.worker_id))
        return self._backlogs[best.worker_id]

    def enqueue(self, entry: JobEntry, leases: LeaseTable) -> None:
        """Track a new entry and place it on the best backlog."""
        self.entries[entry.key] = entry
        entry.state = "queued"
        entry.assigned_to = None
        entry.assigned_at = None
        if entry.deadline_at is None and entry.deadline_s:
            entry.deadline_at = entry.submitted_at + entry.deadline_s
        backlog = self._target_backlog(entry, leases)
        if backlog is None:
            self._unassigned.append(entry.key)
        else:
            backlog.append(entry.key)

    def requeue(self, key: str, leases: LeaseTable) -> JobEntry | None:
        """Put an assigned entry back in the queue (dead worker)."""
        entry = self.entries.get(key)
        if entry is None or entry.state != "assigned":
            return None
        entry.requeues += 1
        self.requeues += 1
        entry.deadline = None
        self.enqueue(entry, leases)
        return entry

    # -- dispatch ------------------------------------------------------------

    def _pop_matching(self, backlog: deque, variant: str | None,
                      from_tail: bool, avoid=None) -> str | None:
        if not backlog:
            return None
        order = list(reversed(backlog) if from_tail else backlog)
        pick = None
        if variant is not None:
            for key in order:
                entry = self.entries.get(key)
                if (entry is not None and entry.variant == variant
                        and not (avoid is not None and avoid(entry))):
                    pick = key
                    break
        if pick is None:
            for key in order:
                entry = self.entries.get(key)
                if entry is None or avoid is None or not avoid(entry):
                    pick = key
                    break
        if pick is None:
            return None
        backlog.remove(pick)
        return pick

    def next_for(self, worker: WorkerRecord) -> tuple[JobEntry, bool] | None:
        """The next entry for an idle worker: ``(entry, stolen)``.

        Own backlog first (oldest-first, preferring the worker's warm
        variant), then the unassigned pool, then a steal from the back
        of the longest peer backlog.
        """
        # A retrying entry avoids the workers it failed on — but only
        # while the fabric has anyone else (a one-worker fabric still
        # makes progress).
        avoid = None
        if len(self._backlogs) > 1:
            avoid = lambda e: worker.name in e.failed_on
        own = self._backlogs.get(worker.worker_id)
        key = self._pop_matching(own, worker.last_variant, from_tail=False,
                                 avoid=avoid) \
            if own is not None else None
        stolen = False
        if key is None and self._unassigned:
            for candidate in self._unassigned:
                entry = self.entries.get(candidate)
                if entry is None or avoid is None or not avoid(entry):
                    key = candidate
                    self._unassigned.remove(candidate)
                    break
        if key is None:
            victims = [(wid, backlog)
                       for wid, backlog in self._backlogs.items()
                       if wid != worker.worker_id and backlog]
            if victims:
                _, backlog = max(victims, key=lambda v: len(v[1]))
                key = self._pop_matching(backlog, worker.last_variant,
                                         from_tail=True, avoid=avoid)
                stolen = key is not None
        if key is None:
            return None
        entry = self.entries[key]
        if stolen:
            self.steals += 1
            worker.steals += 1
        return entry, stolen

    def take(self, key: str) -> JobEntry | None:
        """Pull a *queued* entry out of whichever backlog holds it.

        Used for assignment re-adoption: a worker that kept grinding
        through a coordinator restart claims its in-flight job back
        before the dispatcher can hand it to someone else.
        """
        entry = self.entries.get(key)
        if entry is None or entry.state != "queued":
            return None
        for backlog in self._backlogs.values():
            try:
                backlog.remove(key)
            except ValueError:
                pass
        try:
            self._unassigned.remove(key)
        except ValueError:
            pass
        return entry

    def assign(self, entry: JobEntry, worker: WorkerRecord,
               now: float) -> None:
        entry.state = "assigned"
        entry.assigned_to = worker.worker_id
        entry.assigned_at = now
        entry.attempts += 1
        timeout = entry.timeout_seconds
        entry.deadline = (now + timeout) if timeout else None
        worker.state = "busy"
        worker.inflight_key = entry.key
        worker.last_variant = entry.variant

    # -- completion ----------------------------------------------------------

    def finish(self, key: str) -> JobEntry | None:
        """Mark an entry done and remove it from any backlog."""
        entry = self.entries.pop(key, None)
        if entry is None:
            return None
        entry.state = "done"
        for backlog in self._backlogs.values():
            try:
                backlog.remove(key)
            except ValueError:
                pass
        try:
            self._unassigned.remove(key)
        except ValueError:
            pass
        return entry

    # -- introspection -------------------------------------------------------

    def depth(self) -> int:
        """Queued (not yet assigned) jobs across all backlogs."""
        return sum(1 for e in self.entries.values() if e.state == "queued")

    def inflight(self) -> int:
        return sum(1 for e in self.entries.values() if e.state == "assigned")

    def next_deadline(self) -> float | None:
        deadlines = [e.deadline for e in self.entries.values()
                     if e.state == "assigned" and e.deadline is not None]
        deadlines += [e.deadline_at for e in self.entries.values()
                      if e.state in ("queued", "assigned")
                      and e.deadline_at is not None]
        return min(deadlines) if deadlines else None

    def expired(self, now: float) -> list[JobEntry]:
        """Entries past their *per-attempt* execution deadline."""
        return [e for e in self.entries.values()
                if e.state == "assigned" and e.deadline is not None
                and e.deadline <= now]

    def past_deadline(self, now: float) -> list[JobEntry]:
        """Entries past their *end-to-end* ``deadline_s`` cutoff.

        Unlike :meth:`expired` this also covers queued entries — a job
        nobody ever picked up still times out instead of wedging its
        client forever.
        """
        return [e for e in self.entries.values()
                if e.state in ("queued", "assigned")
                and e.deadline_at is not None and e.deadline_at <= now]
