"""The fabric coordinator: verification as a long-running service.

One single-threaded ``select`` loop owns a listening socket and every
peer connection.  Peers identify themselves by their first frames:

* **workers** (`python -m repro.fabric worker`) send ``register`` and
  stay connected — the coordinator leases them, assigns jobs, renews
  leases on ``heartbeat`` frames and folds ``result`` frames back;
* **clients** (:class:`repro.campaign.executors.FabricExecutor`, the
  ``status`` CLI, remote :class:`~repro.verify.cache.VerdictCache`
  tiers) send ``hello`` and then ``submit``/``status``/``cache_query``/
  ``cache_push``/``shutdown`` frames.

Op table (on top of the PR-3 ops — see :mod:`repro.verify.protocol`):

============== ================================================= =========
op             payload                                           direction
============== ================================================= =========
``hello``      ``{"protocol": v, "role": str}``                  client → c
``welcome``    ``{"protocol": v, "workers": n}``                 c → client
``register``   ``{"protocol": v, "name": str}``                  worker → c
``registered`` ``{"worker": id, "lease_s": s, "protocol": v}``   c → worker
``heartbeat``  ``{"worker": id, "state": "idle"|"busy"}``        worker → c
``lease``      ``{"lease_s": s}``                                c → worker
``steal``      ``{"worker": id}`` — idle worker asks for work    worker → c
``job``        ``{"key", "job", "hints"}`` — assignment          c → worker
``result``     ``{"key", "result", "cache_hit": bool}``          worker → c
``goodbye``    ``{"worker": id}`` — clean departure              worker → c
``submit``     ``{"tag": n, "job", "hints"}``                    client → c
``result``     ``{"tag": n, "result", "source", "worker"}``      c → client
``status``     ``{}`` → ``{"status": {...}}``                    client → c
``cache_query````{"key"}`` → ``cache_result {"key","payload"}``  client → c
``cache_push`` ``{"key","payload"}`` → ``cache_ack {"stored"}``  client → c
``shutdown``   ``{}`` — stop workers and exit                    client → c
``reject``     ``{"worker": id, "key"}`` — busy, reassign it     worker → c
``goodbye``    ``{"reason"}`` — coordinator leaving; reconnect   c → worker
``journal_sync`` ``{"protocol": v}`` — standby subscribes        standby → c
``journal_state`` ``{"snapshot": {...}}`` — sync base state      c → standby
``journal_record`` ``{"record": {...}}`` — streamed WAL record   c → standby
============== ================================================= =========

Fault tolerance: a worker that misses its lease (SIGKILL, network
partition) or drops its connection is declared dead — its in-flight
job is **re-queued** on a surviving worker and its backlog
redistributed.  Jobs are keyed by their content address (the PR-3
verdict-cache key), so a presumed-dead worker's late ``result`` (or a
delivered-twice frame) is folded idempotently: the first result wins
and anything later only bumps ``duplicate_results``.  Completed
verdicts land in the coordinator's authoritative
:class:`~repro.verify.cache.VerdictCache`; a later ``submit`` of the
same question — from any client, any campaign — is answered from the
store without occupying a worker.

Cone-granular serving (PR-10): a submitted job that carries a
``cone_key`` fingerprint (attached by
:func:`repro.verify.delta.plan_delta_campaign`) is additionally
aliased in the cache under its cone address.  A later submit whose
whole-design key *misses* but whose cone address hits — the design
changed, the obligation's cone did not — is answered at submit with
``"source": "delta"``, again without occupying a worker.
"""

from __future__ import annotations

import os
import select
import socket
import time
import traceback

from ..verify.cache import VerdictCache
from ..verify.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_address,
    recv_frame,
    send_frame,
)
from .chaos import ChaosCrash
from .journal import Journal, ReplayState, _apply as _replay_apply
from .state import JobEntry, JobQueue, LeaseTable, WorkerRecord

__all__ = ["Coordinator", "StandbyCoordinator"]

#: Seconds a blocking per-frame read may take before the peer is
#: declared unresponsive (select says readable, so a healthy peer has
#: already queued the bytes).
_FRAME_TIMEOUT = 30.0


class _Peer:
    """One connected socket and what we know about it."""

    __slots__ = ("sock", "address", "role", "worker_id")

    def __init__(self, sock: socket.socket, address: str):
        self.sock = sock
        self.address = address
        self.role = "unknown"  # "unknown" | "client" | "worker"
        self.worker_id: int | None = None


class Coordinator:
    """The campaign-fabric coordinator daemon.

    Args:
        host: bind address (default loopback; bind 0.0.0.0 explicitly
            for cross-host fabrics).
        port: bind port; 0 lets the OS pick one (announced on stdout as
            ``coordinator listening on HOST:PORT``).
        lease_seconds: heartbeat lease length; a worker that misses it
            is declared dead and its in-flight job re-queued.  Workers
            heartbeat at a third of this.
        cache_dir: directory for the authoritative verdict store (None
            = in-memory for this coordinator's lifetime).
        max_frame: per-frame byte cap (None = protocol default).
        quiet: suppress per-event log lines (the hello line always
            prints).
        state_dir: durable-state directory; when set, every queue
            mutation is write-ahead journalled there and the
            constructor *replays* any existing snapshot+journal, so a
            restarted coordinator resumes the same content-keyed jobs.
            ``cache_dir`` defaults to ``state_dir/cache`` so completed
            verdicts survive alongside the queue.
        chaos: optional :class:`repro.fabric.chaos.ChaosEngine` — fault
            injection for the chaos smoke (crash points, frame faults).
        default_max_attempts: retry budget for jobs that don't carry
            their own ``max_attempts``.
        snapshot_every: journal records between automatic compactions.
        journal_fsync: disable only in tests (loses the WAL guarantee).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_seconds: float = 15.0,
                 cache_dir=None, max_frame: int | None = None,
                 quiet: bool = False, state_dir=None, chaos=None,
                 default_max_attempts: int = 3,
                 snapshot_every: int = 512, journal_fsync: bool = True,
                 preloaded: ReplayState | None = None):
        self.host = host
        self.port = port
        self.lease_seconds = lease_seconds
        self.max_frame = max_frame
        self.quiet = quiet
        self.chaos = chaos
        self.default_max_attempts = max(1, int(default_max_attempts))
        if state_dir is not None and cache_dir is None:
            cache_dir = os.path.join(str(state_dir), "cache")
        self.cache = VerdictCache(cache_dir)
        self.leases = LeaseTable(lease_seconds)
        self.queue = JobQueue()
        self._server: socket.socket | None = None
        self._peers: dict[socket.socket, _Peer] = {}
        self._worker_peers: dict[int, _Peer] = {}
        self._standbys: list[_Peer] = []
        self._completed: dict[str, int | None] = {}  # key -> worker id
        self._completed_payloads: dict[str, dict] = {}
        self._expired: set[str] = set()
        self._running = False
        self._crashing = False
        self._wake_r, self._wake_w = os.pipe()
        self._started = time.monotonic()
        self._uncached_seq = 0
        # counters
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_coalesced = 0
        self.jobs_timed_out = 0
        self.jobs_failed = 0
        self.jobs_recovered = 0
        self.duplicate_results = 0
        self.late_results = 0
        self.cache_hits_served = 0
        self.delta_hits_served = 0
        self.cache_queries = 0
        self.cache_query_hits = 0
        self.cache_pushes = 0
        self.cache_push_duplicates = 0
        self.journal: Journal | None = None
        if state_dir is not None:
            self.journal = Journal(state_dir, snapshot_every=snapshot_every,
                                   fsync=journal_fsync, log=self._log_always)
            recovered = self.journal.recover()
            if preloaded is not None:
                recovered = preloaded  # standby promotion wins
            self._load_state(recovered)
            # Compact immediately: recovery replayed the WAL, so the
            # fresh snapshot + empty journal prove the same state.
            self.journal.write_snapshot(self._current_state())
        elif preloaded is not None:
            self._load_state(preloaded)

    def _load_state(self, state: ReplayState) -> None:
        """Adopt a replayed :class:`ReplayState` (recovery/promotion)."""
        now = time.monotonic()
        for key in (*state.pending, *state.completed):
            # Keep the throwaway-key sequence ahead of every recovered
            # key, or a fresh uncacheable submit would collide with a
            # replayed one and wrongly coalesce two different jobs.
            if key.startswith("uncached:"):
                try:
                    self._uncached_seq = max(self._uncached_seq,
                                             int(key.split(":", 1)[1]))
                except ValueError:
                    pass
        for key, record in state.completed.items():
            self._completed[key] = record.get("worker")
            self.jobs_recovered += 1
            payload = record.get("payload")
            if isinstance(payload, dict):
                self._completed_payloads[key] = payload
                if not key.startswith("uncached:") and \
                        payload.get("verdict") not in ("timeout", "error"):
                    self.cache.put(key, payload)
        self._expired |= set(state.expired)
        for key, rec in state.pending.items():
            # Restore the deadline_s clock: the journal anchors each
            # job at its first-submit wall-clock instant, so the
            # monotonic submitted_at is backdated by however long the
            # job has already been waiting across incarnations.
            wall = rec.get("wall")
            try:
                elapsed = max(0.0, time.time() - float(wall)) \
                    if wall is not None else 0.0
            except (TypeError, ValueError):
                elapsed = 0.0
            entry = JobEntry(
                key=key, job=dict(rec.get("job") or {}),
                hints=list(rec.get("hints") or ()),
                variant=str(rec.get("variant") or ""),
                cacheable=bool(rec.get("cacheable", True)),
                submitted_at=now - elapsed,
                submitted_wall=float(wall) if wall is not None else None,
                attempts=int(rec.get("attempts") or 0),
                # Worker-affinity history survives the restart: names
                # (unlike the incarnation-scoped ids) still match
                # re-registering workers, so retries keep avoiding the
                # workers that already failed this job.
                failed_on={w for w in (rec.get("failed_on") or ())
                           if isinstance(w, str)})
            self.queue.enqueue(entry, self.leases)
            self.jobs_recovered += 1
        self.jobs_submitted = state.jobs_submitted
        self.jobs_completed = state.jobs_completed
        self.queue.requeues = state.requeues
        if self.jobs_recovered:
            self._log_always(
                f"recovered {self.queue.depth()} pending / "
                f"{len(self._completed)} completed job(s) from durable state")

    def _current_state(self) -> ReplayState:
        """The live queue as a :class:`ReplayState` (for snapshots and
        ``journal_state`` frames; completed payloads live in the cache)."""
        state = ReplayState(
            jobs_submitted=self.jobs_submitted,
            jobs_completed=self.jobs_completed,
            requeues=self.queue.requeues)
        for key, entry in self.queue.entries.items():
            if entry.state in ("queued", "assigned"):
                state.pending[key] = {
                    "job": entry.job, "hints": entry.hints,
                    "variant": entry.variant, "cacheable": entry.cacheable,
                    "attempts": entry.attempts,
                    "failed_on": sorted(str(w) for w in entry.failed_on),
                    "wall": entry.submitted_wall,
                }
        for key, worker_id in self._completed.items():
            state.completed[key] = {"worker": worker_id, "payload": None}
        state.expired = set(self._expired)
        return state

    def _journal(self, record: dict) -> None:
        """Durably journal one mutation and stream it to standbys."""
        if self.journal is not None:
            self.journal.append(record)
        for standby in list(self._standbys):
            self._send(standby, {"op": "journal_record", "record": record})

    # -- lifecycle -----------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[coordinator] {message}", flush=True)

    def _log_always(self, message: str) -> None:
        """Warnings that print even under ``--quiet`` (recovery, torn
        journals, failover)."""
        print(f"[coordinator] {message}", flush=True)

    def bind(self) -> tuple[str, int]:
        """Bind the listening socket; returns the bound (host, port)."""
        if self._server is None:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
            server.listen(64)
            self._server = server
            self.host, self.port = server.getsockname()[:2]
            print(f"coordinator listening on {self.host}:{self.port}",
                  flush=True)
        return self.host, self.port

    def shutdown(self) -> None:
        """Stop the serve loop (thread-safe: wakes the select)."""
        self._running = False
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - already closed
            pass

    def crash(self) -> None:
        """Die abruptly: no goodbye, no snapshot (thread-safe).

        The test/chaos hook for simulating SIGKILL in-process — peers
        see a dropped connection, and recovery must work from the WAL
        alone.
        """
        self._crashing = True
        self.shutdown()

    def serve(self) -> int:
        """Run until :meth:`shutdown` (or a client ``shutdown`` op).

        A graceful exit (signal, ``shutdown`` op) snapshots durable
        state and tells every worker ``goodbye`` so ``--reconnect``
        workers re-dial instead of dying.  An injected
        :class:`ChaosCrash` (or :meth:`crash`) skips both — it is
        SIGKILL-equivalent.
        """
        self.bind()
        self._running = True
        try:
            while self._running:
                self._tick()
        except BaseException:
            # Crash path (ChaosCrash, real bugs, KeyboardInterrupt
            # outside a handler): no goodbye, no snapshot — recovery
            # must work from the WAL alone.
            self._close_all()
            if self.journal is not None:
                self.journal.close()
            raise
        if self._crashing:
            self._close_all()
            if self.journal is not None:
                self.journal.close()
            return 0
        for worker_peer in list(self._worker_peers.values()):
            self._send(worker_peer, {"op": "goodbye",
                                     "reason": "coordinator shutting down"})
        if self.journal is not None:
            self.journal.write_snapshot(self._current_state())
            self.journal.close()
            self._log("state snapshotted to "
                      f"{self.journal.state_dir}")
        self._close_all()
        return 0

    def _tick(self) -> None:
        now = time.monotonic()
        deadlines = [d for d in (self.leases.next_deadline(),
                                 self.queue.next_deadline())
                     if d is not None]
        timeout = max(0.0, min(deadlines) - now) if deadlines else None
        readable, _, _ = select.select(
            [self._server, self._wake_r, *self._peers], [], [], timeout)
        for sock in readable:
            if sock is self._server:
                self._accept()
            elif sock is self._wake_r:
                os.read(self._wake_r, 4096)
            else:
                peer = self._peers.get(sock)
                if peer is not None:
                    self._service(peer)
        now = time.monotonic()
        for record in self.leases.expired(now):
            self._worker_died(record.worker_id,
                              f"missed lease by {now - record.lease_deadline:.1f}s")
        for entry in self.queue.expired(now):
            self._attempt_expired(entry)
        for entry in self.queue.past_deadline(now):
            self._expire_entry(entry, reason="deadline_s exceeded")
        self._dispatch()
        if self.journal is not None and self.journal.due_for_snapshot:
            self.journal.write_snapshot(self._current_state())

    def _close_all(self) -> None:
        for peer in list(self._peers.values()):
            try:
                peer.sock.close()
            except OSError:
                pass
        self._peers.clear()
        self._worker_peers.clear()
        self._standbys.clear()
        if self._server is not None:
            self._server.close()
            self._server = None

    # -- peer plumbing -------------------------------------------------------

    def _accept(self) -> None:
        try:
            conn, peer_addr = self._server.accept()
        except OSError:
            return
        conn.settimeout(_FRAME_TIMEOUT)
        address = f"{peer_addr[0]}:{peer_addr[1]}"
        self._peers[conn] = _Peer(conn, address)

    def _send(self, peer: _Peer, payload: dict) -> bool:
        # Chaos frame faults are scoped to the coordinator↔worker
        # boundary: that is where the recovery machinery (lease sweep,
        # heartbeat resync, retry) lives.  Client-facing frames are
        # never faulted — a dropped client result has no retransmit
        # path and would only prove the client can hang.
        chaos = self.chaos if peer.role == "worker" else None
        try:
            send_frame(peer.sock, payload, max_frame=self.max_frame,
                       chaos=chaos)
            return True
        except (OSError, ProtocolError) as exc:
            self._drop_peer(peer, f"send failed: {exc}")
            return False

    def _drop_peer(self, peer: _Peer, reason: str) -> None:
        if peer.sock not in self._peers:
            return
        del self._peers[peer.sock]
        if peer in self._standbys:
            self._standbys.remove(peer)
        try:
            peer.sock.close()
        except OSError:
            pass
        if peer.worker_id is not None:
            self._worker_gone(peer.worker_id, reason, dead=True)
        else:
            self._forget_client(peer)

    def _forget_client(self, peer: _Peer) -> None:
        """Drop a vanished client's waiters; its jobs keep running
        (their results still land in the authoritative cache)."""
        for entry in self.queue.entries.values():
            entry.waiters = [(p, tag) for p, tag in entry.waiters
                             if p is not peer]

    def _service(self, peer: _Peer) -> None:
        try:
            frame = recv_frame(peer.sock, max_frame=self.max_frame)
        except ProtocolError as exc:
            # Bad magic / over-long / non-JSON: one error frame, then
            # hang up — the stream cannot be resynchronized.
            self._send(peer, {"op": "error", "message": f"protocol error: "
                              f"{exc}"})
            self._drop_peer(peer, f"protocol error: {exc}")
            return
        except (OSError, ConnectionError) as exc:
            self._drop_peer(peer, f"connection lost: {exc}")
            return
        if frame is None:
            self._drop_peer(peer, "connection closed")
            return
        if self.chaos is not None and peer.role == "worker":
            # Receive-side chaos: the frame "never arrived" (drop) or
            # "arrived twice" (dup).  Same per-op budgets as the send
            # side — worker-facing ops only (see :meth:`_send`).
            op = frame.get("op", "") if isinstance(frame, dict) else ""
            if self.chaos.should_drop(op):
                return
            if self.chaos.should_duplicate(op):
                self._handle_safely(peer, frame)
        self._handle_safely(peer, frame)

    def _handle_safely(self, peer: _Peer, frame: dict) -> None:
        try:
            self._handle(peer, frame)
        except ChaosCrash:
            raise  # the injected crash must kill the serve loop
        except Exception:  # noqa: BLE001 - the loop must survive any frame
            detail = traceback.format_exc(limit=4)
            self._log(f"frame handler failed:\n{detail}")
            self._send(peer, {"op": "error",
                              "message": "internal error: "
                                         + detail.strip().splitlines()[-1]})

    # -- op dispatch ---------------------------------------------------------

    def _handle(self, peer: _Peer, frame: dict) -> None:
        op = frame.get("op")
        if op == "hello":
            self._handle_hello(peer, frame)
        elif op == "register":
            self._handle_register(peer, frame)
        elif op == "heartbeat":
            self._handle_heartbeat(peer, frame)
        elif op == "steal":
            self._dispatch()
        elif op == "result":
            self._handle_result(peer, frame)
        elif op == "reject":
            self._handle_reject(peer, frame)
        elif op == "goodbye":
            self._handle_goodbye(peer)
        elif op == "journal_sync":
            self._handle_journal_sync(peer, frame)
        elif op == "submit":
            self._handle_submit(peer, frame)
        elif op == "status":
            self._send(peer, {"op": "status", "status": self.status()})
        elif op == "cache_query":
            self._handle_cache_query(peer, frame)
        elif op == "cache_push":
            self._handle_cache_push(peer, frame)
        elif op == "ping":
            self._send(peer, {"op": "pong", "version": PROTOCOL_VERSION})
        elif op == "shutdown":
            self._handle_shutdown(peer)
        else:
            self._send(peer, {"op": "error",
                              "message": f"unknown op {op!r} "
                                         f"(protocol v{PROTOCOL_VERSION})"})

    @staticmethod
    def _version_ok(frame: dict) -> bool:
        return frame.get("protocol") == PROTOCOL_VERSION

    def _handle_hello(self, peer: _Peer, frame: dict) -> None:
        if not self._version_ok(frame):
            self._send(peer, {
                "op": "error",
                "message": f"protocol version mismatch: coordinator speaks "
                           f"v{PROTOCOL_VERSION}, peer sent "
                           f"{frame.get('protocol')!r}"})
            self._drop_peer(peer, "version mismatch")
            return
        peer.role = "client"
        self._send(peer, {"op": "welcome", "protocol": PROTOCOL_VERSION,
                          "workers": len(self.leases)})

    def _handle_register(self, peer: _Peer, frame: dict) -> None:
        if not self._version_ok(frame):
            self._send(peer, {
                "op": "error",
                "message": f"protocol version mismatch: coordinator speaks "
                           f"v{PROTOCOL_VERSION}, worker sent "
                           f"{frame.get('protocol')!r}"})
            self._drop_peer(peer, "version mismatch")
            return
        if peer.worker_id is not None:
            # Re-register on the same connection (e.g. after the
            # coordinator told it "unknown worker"): drop the old lease.
            self._worker_gone(peer.worker_id, "re-registered", dead=False)
        now = time.monotonic()
        record = self.leases.register(
            name=str(frame.get("name") or f"worker@{peer.address}"),
            address=peer.address, now=now)
        self.queue.add_worker(record.worker_id)
        peer.role = "worker"
        peer.worker_id = record.worker_id
        self._worker_peers[record.worker_id] = peer
        self._log(f"worker {record.worker_id} ({record.name}) registered")
        if not self._send(peer, {"op": "registered",
                                 "worker": record.worker_id,
                                 "lease_s": self.lease_seconds,
                                 "protocol": PROTOCOL_VERSION}):
            return
        # Re-adoption: a worker that kept grinding through a
        # coordinator restart registers with its in-flight key.  If
        # that job is pending again (the journal replayed it), hand the
        # assignment back instead of running it twice — this is what
        # keeps ``duplicate_results == 0`` across a clean recovery.
        inflight = frame.get("inflight")
        if isinstance(inflight, str):
            entry = self.queue.take(inflight)
            if entry is not None:
                self._journal({"t": "assign", "key": entry.key,
                               "worker": record.worker_id})
                self.queue.assign(entry, record, time.monotonic())
                self._log(f"re-adopted in-flight job {entry.key[:12]}… "
                          f"on worker {record.worker_id}")
        self._dispatch()

    def _handle_heartbeat(self, peer: _Peer, frame: dict) -> None:
        now = time.monotonic()
        record = self.leases.renew(frame.get("worker"), now)
        if record is None:
            self._send(peer, {"op": "error",
                              "message": f"unknown worker "
                                         f"{frame.get('worker')!r}; "
                                         f"re-register"})
            return
        self._resync_assignment(record, frame, now)
        self._send(peer, {"op": "lease", "lease_s": self.lease_seconds})

    def _resync_assignment(self, record: WorkerRecord, frame: dict,
                           now: float) -> None:
        """Recover from a lost ``job``/``result`` frame via heartbeats.

        Heartbeats carry the worker's actual in-flight key.  If it
        disagrees with the coordinator's book-keeping for longer than a
        lease, the assignment frame (or its result) was lost on the
        wire: re-queue the job.  The age guard keeps a heartbeat that
        merely *crossed* a fresh assignment in flight from triggering a
        spurious requeue.  Heartbeats without the field (older workers)
        skip resync entirely.
        """
        if "inflight" not in frame:
            return
        reported = frame.get("inflight")
        if record.inflight_key is None or record.inflight_key == reported:
            return
        entry = self.queue.entries.get(record.inflight_key)
        if entry is None or entry.state != "assigned" \
                or entry.assigned_to != record.worker_id:
            record.state = "idle" if reported is None else record.state
            record.inflight_key = reported
            return
        if entry.assigned_at is None \
                or now - entry.assigned_at <= self.lease_seconds:
            return
        self._log(f"worker {record.worker_id} lost track of job "
                  f"{entry.key[:12]}… (reports {str(reported)[:12]}); "
                  f"re-queueing")
        self._journal({"t": "requeue", "key": entry.key,
                       "worker": record.worker_id,
                       "worker_name": record.name})
        # Keep live state and journal replay in agreement: the retry
        # avoids the worker whose assignment frame went missing.
        entry.failed_on.add(record.name)
        self.queue.requeue(entry.key, self.leases)
        record.state = "idle" if reported is None else "busy"
        record.inflight_key = reported

    def _handle_reject(self, peer: _Peer, frame: dict) -> None:
        """A worker refused an assignment (it was already busy)."""
        record = self.leases.get(peer.worker_id) \
            if peer.worker_id is not None else None
        key = frame.get("key")
        entry = self.queue.entries.get(key) if isinstance(key, str) else None
        if entry is None or entry.state != "assigned":
            return
        if record is not None \
                and entry.assigned_to == record.worker_id:
            self._journal({"t": "requeue", "key": key,
                           "worker": record.worker_id,
                           "worker_name": record.name})
            entry.failed_on.add(record.name)
            self.queue.requeue(key, self.leases)
            # The worker is mid-grind on something else: it stays busy,
            # and crucially its *real* in-flight key is untouched.
            record.state = "busy"
            self._log(f"worker {record.worker_id} rejected job "
                      f"{str(key)[:12]}…; re-queued")
            self._dispatch()

    def _handle_journal_sync(self, peer: _Peer, frame: dict) -> None:
        """A standby subscribes to the journal stream."""
        if not self._version_ok(frame):
            self._send(peer, {
                "op": "error",
                "message": f"protocol version mismatch: coordinator speaks "
                           f"v{PROTOCOL_VERSION}, standby sent "
                           f"{frame.get('protocol')!r}"})
            self._drop_peer(peer, "version mismatch")
            return
        peer.role = "standby"
        if self._send(peer, {"op": "journal_state",
                             "protocol": PROTOCOL_VERSION,
                             "lease_s": self.lease_seconds,
                             "snapshot": self._current_state().to_snapshot()}):
            self._standbys.append(peer)
            self._log(f"standby subscribed from {peer.address}")

    def _handle_goodbye(self, peer: _Peer) -> None:
        if peer.worker_id is not None:
            self._worker_gone(peer.worker_id, "clean departure", dead=False)
        if peer.sock in self._peers:
            del self._peers[peer.sock]
        try:
            peer.sock.close()
        except OSError:
            pass

    def _handle_shutdown(self, peer: _Peer) -> None:
        self._log("shutdown requested")
        self._send(peer, {"op": "ok"})
        for worker_peer in list(self._worker_peers.values()):
            self._send(worker_peer, {"op": "shutdown"})
        self._running = False

    # -- workers dying -------------------------------------------------------

    def _worker_gone(self, worker_id: int, reason: str, dead: bool) -> None:
        record = self.leases.remove(worker_id, dead=dead)
        peer = self._worker_peers.pop(worker_id, None)
        if peer is not None:
            peer.worker_id = None
            if peer.sock in self._peers and dead:
                del self._peers[peer.sock]
                try:
                    peer.sock.close()
                except OSError:
                    pass
        if record is None:
            return
        self._log(f"worker {worker_id} ({record.name}) gone: {reason}")
        for key in self.queue.drop_worker(worker_id):
            entry = self.queue.entries.get(key)
            if entry is not None and entry.state == "queued":
                self.queue.enqueue(entry, self.leases)
        if record.inflight_key is not None:
            entry = self.queue.entries.get(record.inflight_key)
            if entry is not None and entry.state == "assigned" \
                    and entry.assigned_to == worker_id:
                if dead and entry.attempts >= self._retry_limit(entry):
                    self._fail_entry(
                        entry,
                        f"worker died {entry.attempts} time(s) running "
                        f"this job (max_attempts={self._retry_limit(entry)})")
                else:
                    # worker_name feeds failed_on on replay, so it is
                    # only recorded when the live path records it too
                    # (a clean goodbye is not a failure).
                    self._journal({"t": "requeue", "key": entry.key,
                                   "worker": worker_id,
                                   "worker_name": record.name
                                   if dead else None})
                    if dead:
                        entry.failed_on.add(record.name)
                    self.queue.requeue(entry.key, self.leases)
                    self._log(f"re-queued job {entry.key[:12]}… "
                              f"(attempt {entry.requeues + 1})")

    def _worker_died(self, worker_id: int, reason: str) -> None:
        self._worker_gone(worker_id, reason, dead=True)

    # -- jobs ----------------------------------------------------------------

    def _job_key(self, job: dict, hints) -> tuple[str, bool]:
        """The idempotency key of a submission: the PR-3 job cache key
        when the job is cacheable, else a unique throwaway key."""
        from ..campaign.runner import job_cache_key
        from ..campaign.spec import Job

        try:
            key = job_cache_key(Job.from_dict(job), hints)
        except Exception:  # noqa: BLE001 - malformed jobs stay schedulable
            key = None
        if key is not None:
            return key, True
        self._uncached_seq += 1
        return f"uncached:{self._uncached_seq}", False

    def _cone_key(self, job: dict, hints) -> str | None:
        """The cone-granular alias address of a submission, or None.

        Only jobs that arrive with a ``cone_key`` fingerprint get one —
        the coordinator never builds a design to compute it (that is
        the delta planner's job, done once per campaign client-side).
        """
        if not job.get("cone_key"):
            return None
        from ..campaign.spec import Job
        from ..verify.delta import job_cone_key

        try:
            return job_cone_key(Job.from_dict(job), hints)
        except Exception:  # noqa: BLE001 - a bad fingerprint is a miss
            return None

    def _handle_submit(self, peer: _Peer, frame: dict) -> None:
        peer.role = "client"
        tag = frame.get("tag")
        job = frame.get("job")
        if not isinstance(job, dict):
            self._send(peer, {"op": "error", "tag": tag,
                              "message": "submit carries no job record"})
            return
        hints = list(frame.get("hints") or ())
        self.jobs_submitted += 1
        key, cacheable = self._job_key(job, hints)
        if cacheable:
            payload = self.cache.get(key)
            if payload is None:
                # A journalled result whose verdict the cache refuses
                # (timeout/error) still answers a re-submit — the job
                # must not run again after a crash-recover.
                payload = self._completed_payloads.get(key)
            if payload is not None:
                self.cache_hits_served += 1
                self._send(peer, {"op": "result", "tag": tag, "key": key,
                                  "result": payload, "source": "cache",
                                  "worker": self._completed.get(key)})
                return
            # Cone-granular fallback: the whole-design key missed, but
            # the job's obligation cone may be untouched since a prior
            # design solved it — answer from the alias tier without
            # occupying a worker.
            cone = self._cone_key(job, hints)
            if cone is not None:
                payload = self.cache.get_cone(cone)
                if payload is not None:
                    self.delta_hits_served += 1
                    # Promote: the next submit of *this* design hits the
                    # primary key directly instead of via the alias.
                    self.cache.put(key, payload, cone_key=cone)
                    self._send(peer, {"op": "result", "tag": tag,
                                      "key": key, "result": payload,
                                      "source": "delta", "worker": None})
                    return
        entry = self.queue.entries.get(key)
        if entry is not None:
            # The same question is already in flight (another client,
            # or a re-submitted frame): one execution serves everyone.
            entry.waiters.append((peer, tag))
            self.jobs_coalesced += 1
            return
        entry = JobEntry(key=key, job=job, hints=hints,
                         variant=str(job.get("variant_id") or ""),
                         cacheable=cacheable,
                         submitted_at=time.monotonic(),
                         submitted_wall=time.time(),
                         waiters=[(peer, tag)])
        self._journal({"t": "submit", "key": key, "job": job,
                       "hints": hints, "variant": entry.variant,
                       "cacheable": cacheable,
                       "deadline_s": entry.deadline_s,
                       "max_attempts": entry.max_attempts,
                       "wall": entry.submitted_wall})
        if self.chaos is not None:
            # Crash point: the submit is durable but unacknowledged —
            # recovery must replay it and the client's re-submit must
            # coalesce onto it.
            self.chaos.on_submit_journalled()
        self.queue.enqueue(entry, self.leases)
        self._dispatch()

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for record in self.leases.idle_workers():
                peer = self._worker_peers.get(record.worker_id)
                if peer is None:
                    continue
                nxt = self.queue.next_for(record)
                if nxt is None:
                    continue
                entry, stolen = nxt
                self._journal({"t": "assign", "key": entry.key,
                               "worker": record.worker_id})
                if not self._send(peer, {"op": "job", "key": entry.key,
                                         "job": entry.job,
                                         "hints": entry.hints}):
                    # The send dropped the peer and re-placed the
                    # worker's work; start the scan over.
                    self.queue.enqueue(entry, self.leases)
                    progress = True
                    break
                self.queue.assign(entry, record, time.monotonic())
                self._log(f"job {entry.key[:12]}… → worker "
                          f"{record.worker_id}"
                          + (" (stolen)" if stolen else ""))
                progress = True

    def _deliver(self, entry: JobEntry, payload: dict, source: str,
                 worker_id: int | None) -> None:
        for peer, tag in entry.waiters:
            self._send(peer, {"op": "result", "tag": tag, "key": entry.key,
                              "result": payload, "source": source,
                              "worker": worker_id})
        entry.waiters = []

    def _store(self, entry: JobEntry, payload: dict) -> None:
        if entry.cacheable and payload.get("verdict") not in ("timeout",
                                                              "error"):
            self.cache.put(entry.key, payload,
                           cone_key=self._cone_key(entry.job, entry.hints))

    def _retry_limit(self, entry: JobEntry) -> int:
        limit = entry.max_attempts
        return int(limit) if limit else self.default_max_attempts

    def _attempt_expired(self, entry: JobEntry) -> None:
        """A per-attempt execution deadline lapsed: retry elsewhere
        while the budget and the worker pool allow, else go terminal."""
        others = [w for w in self.leases.workers()
                  if w.worker_id != entry.assigned_to]
        if entry.attempts < self._retry_limit(entry) and others:
            self._log(f"job {entry.key[:12]}… timed out on worker "
                      f"{entry.assigned_to} (attempt {entry.attempts}); "
                      f"retrying elsewhere")
            record = self.leases.get(entry.assigned_to) \
                if entry.assigned_to is not None else None
            self._journal({"t": "requeue", "key": entry.key,
                           "worker": entry.assigned_to,
                           "worker_name": record.name
                           if record is not None else None})
            if record is not None:
                entry.failed_on.add(record.name)
            self.queue.requeue(entry.key, self.leases)
            # The old worker is still grinding; its late result folds
            # in idempotently if it ever lands.
            return
        self._expire_entry(entry, reason="execution timeout")

    def _expire_entry(self, entry: JobEntry, reason: str) -> None:
        from ..campaign.executors import _timeout_result
        from ..campaign.spec import Job

        self.jobs_timed_out += 1
        payload = _timeout_result(Job.from_dict(entry.job)).to_dict()
        self._journal({"t": "expire", "key": entry.key})
        self._deliver(entry, payload, "timeout", entry.assigned_to)
        self.queue.finish(entry.key)
        self._expired.add(entry.key)
        self._log(f"job {entry.key[:12]}… timed out "
                  f"({reason}, attempt {entry.attempts}, worker "
                  f"{entry.assigned_to})")
        # An assigned worker is still grinding; it stays busy until its
        # (late) result arrives and is folded in as cache-only.

    def _fail_entry(self, entry: JobEntry, message: str) -> None:
        """Terminal ERROR verdict: the retry budget is spent."""
        from ..campaign.executors import _worker_death_result
        from ..campaign.spec import Job

        self.jobs_failed += 1
        payload = _worker_death_result(Job.from_dict(entry.job),
                                       message).to_dict()
        self._journal({"t": "expire", "key": entry.key})
        self._deliver(entry, payload, "error", entry.assigned_to)
        self.queue.finish(entry.key)
        self._expired.add(entry.key)
        self._log(f"job {entry.key[:12]}… failed permanently: {message}")

    def _handle_result(self, peer: _Peer, frame: dict) -> None:
        record = self.leases.get(peer.worker_id) \
            if peer.worker_id is not None else None
        if record is None:
            self._send(peer, {"op": "error",
                              "message": "result from unregistered worker; "
                                         "re-register"})
            return
        key = frame.get("key")
        payload = frame.get("result")
        if record.inflight_key == key:
            record.state = "idle"
            record.inflight_key = None
        if key in self._completed:
            self.duplicate_results += 1
            record.duplicates += 1
            self._log(f"duplicate result for {str(key)[:12]}… ignored")
            self._dispatch()
            return
        entry = self.queue.entries.get(key)
        if entry is None:
            # Late result for a job already timed out (or a key we
            # never assigned): keep the verdict — solved anywhere is
            # solved everywhere — but nobody is waiting.
            if key in self._expired and isinstance(payload, dict):
                self.late_results += 1
                self._expired.discard(key)
                self._completed[key] = record.worker_id
                fake = JobEntry(key=key, job=payload.get("job") or {},
                                hints=[], variant="", cacheable=True,
                                submitted_at=time.monotonic())
                self._store(fake, payload)
            else:
                self.duplicate_results += 1
                record.duplicates += 1
            self._dispatch()
            return
        self._journal({"t": "result", "key": key,
                       "worker": record.worker_id,
                       "payload": payload if isinstance(payload, dict)
                       else None})
        if self.chaos is not None:
            # Crash point: the result is durable but nobody — client or
            # worker — has been told.  Recovery must serve the
            # journalled payload to the re-submitting client without
            # running the job again.
            self.chaos.on_result_journalled()
        self.queue.finish(key)
        self._completed[key] = record.worker_id
        self.jobs_completed += 1
        record.completed += 1
        if frame.get("cache_hit"):
            record.cache_hits += 1
        if isinstance(payload, dict):
            self._completed_payloads[key] = payload
            self._store(entry, payload)
            self._deliver(entry, payload, "worker", record.worker_id)
        self._dispatch()

    # -- the replicated cache ------------------------------------------------

    def _handle_cache_query(self, peer: _Peer, frame: dict) -> None:
        peer.role = "client"
        key = frame.get("key")
        payload = self.cache.get(key) if isinstance(key, str) else None
        self.cache_queries += 1
        if payload is not None:
            self.cache_query_hits += 1
        self._send(peer, {"op": "cache_result", "key": key,
                          "payload": payload})

    def _handle_cache_push(self, peer: _Peer, frame: dict) -> None:
        peer.role = "client"
        key = frame.get("key")
        payload = frame.get("payload")
        stored = False
        if isinstance(key, str) and isinstance(payload, dict):
            if key in self.cache:
                self.cache_push_duplicates += 1
            else:
                self.cache.put(key, payload)
                stored = True
                self.cache_pushes += 1
        self._send(peer, {"op": "cache_ack", "key": key, "stored": stored})

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready fabric counters (the ``status`` op's payload)."""
        now = time.monotonic()
        return {
            "coordinator": {
                "protocol": PROTOCOL_VERSION,
                "address": f"{self.host}:{self.port}",
                "uptime_s": round(now - self._started, 3),
                "lease_s": self.lease_seconds,
                "workers": len(self.leases),
                "queue_depth": self.queue.depth(),
                "inflight": self.queue.inflight(),
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "jobs_coalesced": self.jobs_coalesced,
                "jobs_requeued": self.queue.requeues,
                "jobs_timed_out": self.jobs_timed_out,
                "jobs_failed": self.jobs_failed,
                "jobs_recovered": self.jobs_recovered,
                "default_max_attempts": self.default_max_attempts,
                "duplicate_results": self.duplicate_results,
                "late_results": self.late_results,
                "standbys": len(self._standbys),
                "journal": self.journal.status()
                if self.journal is not None else None,
                "chaos": self.chaos.status()
                if self.chaos is not None else None,
                "steals": self.queue.steals,
                "dead_workers": self.leases.dead,
                "departed_workers": self.leases.departed,
                "cache": {
                    "entries": len(self.cache),
                    "quarantined": self.cache.quarantined,
                    "hits_served": self.cache_hits_served,
                    "delta_hits_served": self.delta_hits_served,
                    "cone_aliases": self.cache.status()["cone_aliases"],
                    "queries": self.cache_queries,
                    "query_hits": self.cache_query_hits,
                    "pushes": self.cache_pushes,
                    "push_duplicates": self.cache_push_duplicates,
                },
            },
            "workers": {
                str(w.worker_id): w.status(now)
                for w in self.leases.workers()
            },
        }


class StandbyCoordinator:
    """A warm standby: tails the primary's journal, promotes on loss.

    The standby dials the primary, sends ``journal_sync`` and receives
    the primary's full state as a ``journal_state`` snapshot followed
    by a live stream of ``journal_record`` frames — each applied to an
    in-memory :class:`ReplayState` (and persisted to the standby's own
    ``--state-dir`` journal when given, so even a standby crash loses
    nothing).  Liveness is lease-based: the standby pings whenever the
    stream has been silent for a third of the primary's lease, and a
    primary that stays silent past the lease — or drops the connection
    and refuses ``reconnect_attempts`` re-dials — is declared dead.
    Promotion constructs a :class:`Coordinator` preloaded with the
    replayed state on the standby's own host:port and serves.

    Split-brain caveat (documented residue): a network partition that
    isolates a *live* primary from its standby promotes anyway.  Both
    coordinators then serve — safely for verdicts (jobs are pure and
    content-keyed) but with the worker pool split between them until
    operators intervene.
    """

    def __init__(self, primary: str, host: str = "127.0.0.1",
                 port: int = 0, lease_seconds: float = 15.0,
                 cache_dir=None, state_dir=None,
                 max_frame: int | None = None, quiet: bool = False,
                 reconnect_attempts: int = 2, backoff_base: float = 0.5):
        self.primary = parse_address(primary)
        self.host = host
        self.port = port
        self.lease_seconds = lease_seconds
        self.cache_dir = cache_dir
        self.state_dir = state_dir
        self.max_frame = max_frame
        self.quiet = quiet
        self.reconnect_attempts = max(0, int(reconnect_attempts))
        self.backoff_base = backoff_base
        self.state = ReplayState()
        self.records_applied = 0
        self._journal: Journal | None = None
        self._running = True
        self.coordinator: Coordinator | None = None

    def _log(self, message: str) -> None:
        print(f"[standby] {message}", flush=True)

    def stop(self) -> None:
        self._running = False
        if self.coordinator is not None:
            self.coordinator.shutdown()

    def _apply_record(self, record: dict) -> None:
        _replay_apply(self.state, record)
        self.records_applied += 1
        if self._journal is not None:
            self._journal.append(record)

    def _sync_once(self) -> bool:
        """One connected session with the primary.

        Returns True if the session ended because the standby was
        stopped, False if the primary must be presumed dead/unreachable
        (caller decides between re-dial and promotion).
        """
        host, port = self.primary
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError as exc:
            self._log(f"primary {host}:{port} unreachable: {exc}")
            return False
        try:
            sock.settimeout(max(0.2, self.lease_seconds / 3.0))
            send_frame(sock, {"op": "journal_sync",
                              "protocol": PROTOCOL_VERSION},
                       max_frame=self.max_frame)
            last_heard = time.monotonic()
            synced = False
            while self._running:
                try:
                    frame = recv_frame(sock, max_frame=self.max_frame)
                except socket.timeout:
                    if time.monotonic() - last_heard > self.lease_seconds:
                        self._log("primary silent past its lease")
                        return False
                    try:
                        send_frame(sock, {"op": "ping"},
                                   max_frame=self.max_frame)
                    except OSError:
                        return False
                    continue
                except (OSError, ConnectionError, ProtocolError) as exc:
                    self._log(f"journal stream lost: {exc}")
                    return False
                if frame is None:
                    self._log("primary closed the journal stream")
                    return False
                last_heard = time.monotonic()
                op = frame.get("op")
                if op == "journal_state":
                    self.state = ReplayState.from_snapshot(
                        frame.get("snapshot") or {})
                    synced = True
                    self._log(f"synced: {len(self.state.pending)} pending / "
                              f"{len(self.state.completed)} completed")
                elif op == "journal_record" and synced:
                    record = frame.get("record")
                    if isinstance(record, dict):
                        self._apply_record(record)
                elif op == "error":
                    self._log(f"primary refused sync: "
                              f"{frame.get('message')}")
                    return True  # config error, not a dead primary
                # pongs and anything else just refresh last_heard
            return True
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def promote(self) -> Coordinator:
        """Build the successor coordinator from the replayed state."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        self._log(f"promoting: {len(self.state.pending)} pending job(s) "
                  f"carried over")
        self.coordinator = Coordinator(
            host=self.host, port=self.port,
            lease_seconds=self.lease_seconds,
            cache_dir=self.cache_dir, max_frame=self.max_frame,
            quiet=self.quiet, state_dir=self.state_dir,
            preloaded=self.state)
        return self.coordinator

    def run(self) -> int:
        """Tail the primary until it dies, then take over."""
        if self.state_dir is not None:
            self._journal = Journal(self.state_dir, log=self._log)
            # Tailing starts from the primary's snapshot, so the local
            # journal records only this session's stream.
            self._journal.write_snapshot(ReplayState())
        failures = 0
        while self._running:
            if self._sync_once():
                return 0  # stopped deliberately
            failures += 1
            if failures > self.reconnect_attempts:
                break
            delay = min(self.backoff_base * (2 ** (failures - 1)), 5.0)
            self._log(f"re-dialling primary in {delay:.1f}s "
                      f"(attempt {failures}/{self.reconnect_attempts})")
            time.sleep(delay)
        if not self._running:
            return 0
        if self._journal is not None:
            # Persist what the stream delivered so the promoted
            # coordinator's own recovery sees it too.
            self._journal.write_snapshot(self.state)
        return self.promote().serve()
