"""The fabric coordinator: verification as a long-running service.

One single-threaded ``select`` loop owns a listening socket and every
peer connection.  Peers identify themselves by their first frames:

* **workers** (`python -m repro.fabric worker`) send ``register`` and
  stay connected — the coordinator leases them, assigns jobs, renews
  leases on ``heartbeat`` frames and folds ``result`` frames back;
* **clients** (:class:`repro.campaign.executors.FabricExecutor`, the
  ``status`` CLI, remote :class:`~repro.verify.cache.VerdictCache`
  tiers) send ``hello`` and then ``submit``/``status``/``cache_query``/
  ``cache_push``/``shutdown`` frames.

Op table (on top of the PR-3 ops — see :mod:`repro.verify.protocol`):

============== ================================================= =========
op             payload                                           direction
============== ================================================= =========
``hello``      ``{"protocol": v, "role": str}``                  client → c
``welcome``    ``{"protocol": v, "workers": n}``                 c → client
``register``   ``{"protocol": v, "name": str}``                  worker → c
``registered`` ``{"worker": id, "lease_s": s, "protocol": v}``   c → worker
``heartbeat``  ``{"worker": id, "state": "idle"|"busy"}``        worker → c
``lease``      ``{"lease_s": s}``                                c → worker
``steal``      ``{"worker": id}`` — idle worker asks for work    worker → c
``job``        ``{"key", "job", "hints"}`` — assignment          c → worker
``result``     ``{"key", "result", "cache_hit": bool}``          worker → c
``goodbye``    ``{"worker": id}`` — clean departure              worker → c
``submit``     ``{"tag": n, "job", "hints"}``                    client → c
``result``     ``{"tag": n, "result", "source", "worker"}``      c → client
``status``     ``{}`` → ``{"status": {...}}``                    client → c
``cache_query````{"key"}`` → ``cache_result {"key","payload"}``  client → c
``cache_push`` ``{"key","payload"}`` → ``cache_ack {"stored"}``  client → c
``shutdown``   ``{}`` — stop workers and exit                    client → c
============== ================================================= =========

Fault tolerance: a worker that misses its lease (SIGKILL, network
partition) or drops its connection is declared dead — its in-flight
job is **re-queued** on a surviving worker and its backlog
redistributed.  Jobs are keyed by their content address (the PR-3
verdict-cache key), so a presumed-dead worker's late ``result`` (or a
delivered-twice frame) is folded idempotently: the first result wins
and anything later only bumps ``duplicate_results``.  Completed
verdicts land in the coordinator's authoritative
:class:`~repro.verify.cache.VerdictCache`; a later ``submit`` of the
same question — from any client, any campaign — is answered from the
store without occupying a worker.
"""

from __future__ import annotations

import os
import select
import socket
import time
import traceback

from ..verify.cache import VerdictCache
from ..verify.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from .state import JobEntry, JobQueue, LeaseTable, WorkerRecord

__all__ = ["Coordinator"]

#: Seconds a blocking per-frame read may take before the peer is
#: declared unresponsive (select says readable, so a healthy peer has
#: already queued the bytes).
_FRAME_TIMEOUT = 30.0


class _Peer:
    """One connected socket and what we know about it."""

    __slots__ = ("sock", "address", "role", "worker_id")

    def __init__(self, sock: socket.socket, address: str):
        self.sock = sock
        self.address = address
        self.role = "unknown"  # "unknown" | "client" | "worker"
        self.worker_id: int | None = None


class Coordinator:
    """The campaign-fabric coordinator daemon.

    Args:
        host: bind address (default loopback; bind 0.0.0.0 explicitly
            for cross-host fabrics).
        port: bind port; 0 lets the OS pick one (announced on stdout as
            ``coordinator listening on HOST:PORT``).
        lease_seconds: heartbeat lease length; a worker that misses it
            is declared dead and its in-flight job re-queued.  Workers
            heartbeat at a third of this.
        cache_dir: directory for the authoritative verdict store (None
            = in-memory for this coordinator's lifetime).
        max_frame: per-frame byte cap (None = protocol default).
        quiet: suppress per-event log lines (the hello line always
            prints).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_seconds: float = 15.0,
                 cache_dir=None, max_frame: int | None = None,
                 quiet: bool = False):
        self.host = host
        self.port = port
        self.lease_seconds = lease_seconds
        self.max_frame = max_frame
        self.quiet = quiet
        self.cache = VerdictCache(cache_dir)
        self.leases = LeaseTable(lease_seconds)
        self.queue = JobQueue()
        self._server: socket.socket | None = None
        self._peers: dict[socket.socket, _Peer] = {}
        self._worker_peers: dict[int, _Peer] = {}
        self._completed: dict[str, int | None] = {}  # key -> worker id
        self._expired: set[str] = set()
        self._running = False
        self._wake_r, self._wake_w = os.pipe()
        self._started = time.monotonic()
        self._uncached_seq = 0
        # counters
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_coalesced = 0
        self.jobs_timed_out = 0
        self.duplicate_results = 0
        self.late_results = 0
        self.cache_hits_served = 0
        self.cache_queries = 0
        self.cache_query_hits = 0
        self.cache_pushes = 0
        self.cache_push_duplicates = 0

    # -- lifecycle -----------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[coordinator] {message}", flush=True)

    def bind(self) -> tuple[str, int]:
        """Bind the listening socket; returns the bound (host, port)."""
        if self._server is None:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
            server.listen(64)
            self._server = server
            self.host, self.port = server.getsockname()[:2]
            print(f"coordinator listening on {self.host}:{self.port}",
                  flush=True)
        return self.host, self.port

    def shutdown(self) -> None:
        """Stop the serve loop (thread-safe: wakes the select)."""
        self._running = False
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - already closed
            pass

    def serve(self) -> int:
        """Run until :meth:`shutdown` (or a client ``shutdown`` op)."""
        self.bind()
        self._running = True
        try:
            while self._running:
                self._tick()
        finally:
            self._close_all()
        return 0

    def _tick(self) -> None:
        now = time.monotonic()
        deadlines = [d for d in (self.leases.next_deadline(),
                                 self.queue.next_deadline())
                     if d is not None]
        timeout = max(0.0, min(deadlines) - now) if deadlines else None
        readable, _, _ = select.select(
            [self._server, self._wake_r, *self._peers], [], [], timeout)
        for sock in readable:
            if sock is self._server:
                self._accept()
            elif sock is self._wake_r:
                os.read(self._wake_r, 4096)
            else:
                peer = self._peers.get(sock)
                if peer is not None:
                    self._service(peer)
        now = time.monotonic()
        for record in self.leases.expired(now):
            self._worker_died(record.worker_id,
                              f"missed lease by {now - record.lease_deadline:.1f}s")
        for entry in self.queue.expired(now):
            self._expire_entry(entry)
        self._dispatch()

    def _close_all(self) -> None:
        for peer in list(self._peers.values()):
            try:
                peer.sock.close()
            except OSError:
                pass
        self._peers.clear()
        self._worker_peers.clear()
        if self._server is not None:
            self._server.close()
            self._server = None

    # -- peer plumbing -------------------------------------------------------

    def _accept(self) -> None:
        try:
            conn, peer_addr = self._server.accept()
        except OSError:
            return
        conn.settimeout(_FRAME_TIMEOUT)
        address = f"{peer_addr[0]}:{peer_addr[1]}"
        self._peers[conn] = _Peer(conn, address)

    def _send(self, peer: _Peer, payload: dict) -> bool:
        try:
            send_frame(peer.sock, payload, max_frame=self.max_frame)
            return True
        except (OSError, ProtocolError) as exc:
            self._drop_peer(peer, f"send failed: {exc}")
            return False

    def _drop_peer(self, peer: _Peer, reason: str) -> None:
        if peer.sock not in self._peers:
            return
        del self._peers[peer.sock]
        try:
            peer.sock.close()
        except OSError:
            pass
        if peer.worker_id is not None:
            self._worker_gone(peer.worker_id, reason, dead=True)
        else:
            self._forget_client(peer)

    def _forget_client(self, peer: _Peer) -> None:
        """Drop a vanished client's waiters; its jobs keep running
        (their results still land in the authoritative cache)."""
        for entry in self.queue.entries.values():
            entry.waiters = [(p, tag) for p, tag in entry.waiters
                             if p is not peer]

    def _service(self, peer: _Peer) -> None:
        try:
            frame = recv_frame(peer.sock, max_frame=self.max_frame)
        except ProtocolError as exc:
            # Bad magic / over-long / non-JSON: one error frame, then
            # hang up — the stream cannot be resynchronized.
            self._send(peer, {"op": "error", "message": f"protocol error: "
                              f"{exc}"})
            self._drop_peer(peer, f"protocol error: {exc}")
            return
        except (OSError, ConnectionError) as exc:
            self._drop_peer(peer, f"connection lost: {exc}")
            return
        if frame is None:
            self._drop_peer(peer, "connection closed")
            return
        try:
            self._handle(peer, frame)
        except Exception:  # noqa: BLE001 - the loop must survive any frame
            detail = traceback.format_exc(limit=4)
            self._log(f"frame handler failed:\n{detail}")
            self._send(peer, {"op": "error",
                              "message": "internal error: "
                                         + detail.strip().splitlines()[-1]})

    # -- op dispatch ---------------------------------------------------------

    def _handle(self, peer: _Peer, frame: dict) -> None:
        op = frame.get("op")
        if op == "hello":
            self._handle_hello(peer, frame)
        elif op == "register":
            self._handle_register(peer, frame)
        elif op == "heartbeat":
            self._handle_heartbeat(peer, frame)
        elif op == "steal":
            self._dispatch()
        elif op == "result":
            self._handle_result(peer, frame)
        elif op == "goodbye":
            self._handle_goodbye(peer)
        elif op == "submit":
            self._handle_submit(peer, frame)
        elif op == "status":
            self._send(peer, {"op": "status", "status": self.status()})
        elif op == "cache_query":
            self._handle_cache_query(peer, frame)
        elif op == "cache_push":
            self._handle_cache_push(peer, frame)
        elif op == "ping":
            self._send(peer, {"op": "pong", "version": PROTOCOL_VERSION})
        elif op == "shutdown":
            self._handle_shutdown(peer)
        else:
            self._send(peer, {"op": "error",
                              "message": f"unknown op {op!r} "
                                         f"(protocol v{PROTOCOL_VERSION})"})

    @staticmethod
    def _version_ok(frame: dict) -> bool:
        return frame.get("protocol") == PROTOCOL_VERSION

    def _handle_hello(self, peer: _Peer, frame: dict) -> None:
        if not self._version_ok(frame):
            self._send(peer, {
                "op": "error",
                "message": f"protocol version mismatch: coordinator speaks "
                           f"v{PROTOCOL_VERSION}, peer sent "
                           f"{frame.get('protocol')!r}"})
            self._drop_peer(peer, "version mismatch")
            return
        peer.role = "client"
        self._send(peer, {"op": "welcome", "protocol": PROTOCOL_VERSION,
                          "workers": len(self.leases)})

    def _handle_register(self, peer: _Peer, frame: dict) -> None:
        if not self._version_ok(frame):
            self._send(peer, {
                "op": "error",
                "message": f"protocol version mismatch: coordinator speaks "
                           f"v{PROTOCOL_VERSION}, worker sent "
                           f"{frame.get('protocol')!r}"})
            self._drop_peer(peer, "version mismatch")
            return
        if peer.worker_id is not None:
            # Re-register on the same connection (e.g. after the
            # coordinator told it "unknown worker"): drop the old lease.
            self._worker_gone(peer.worker_id, "re-registered", dead=False)
        now = time.monotonic()
        record = self.leases.register(
            name=str(frame.get("name") or f"worker@{peer.address}"),
            address=peer.address, now=now)
        self.queue.add_worker(record.worker_id)
        peer.role = "worker"
        peer.worker_id = record.worker_id
        self._worker_peers[record.worker_id] = peer
        self._log(f"worker {record.worker_id} ({record.name}) registered")
        if self._send(peer, {"op": "registered",
                             "worker": record.worker_id,
                             "lease_s": self.lease_seconds,
                             "protocol": PROTOCOL_VERSION}):
            self._dispatch()

    def _handle_heartbeat(self, peer: _Peer, frame: dict) -> None:
        record = self.leases.renew(frame.get("worker"), time.monotonic())
        if record is None:
            self._send(peer, {"op": "error",
                              "message": f"unknown worker "
                                         f"{frame.get('worker')!r}; "
                                         f"re-register"})
            return
        self._send(peer, {"op": "lease", "lease_s": self.lease_seconds})

    def _handle_goodbye(self, peer: _Peer) -> None:
        if peer.worker_id is not None:
            self._worker_gone(peer.worker_id, "clean departure", dead=False)
        if peer.sock in self._peers:
            del self._peers[peer.sock]
        try:
            peer.sock.close()
        except OSError:
            pass

    def _handle_shutdown(self, peer: _Peer) -> None:
        self._log("shutdown requested")
        self._send(peer, {"op": "ok"})
        for worker_peer in list(self._worker_peers.values()):
            self._send(worker_peer, {"op": "shutdown"})
        self._running = False

    # -- workers dying -------------------------------------------------------

    def _worker_gone(self, worker_id: int, reason: str, dead: bool) -> None:
        record = self.leases.remove(worker_id, dead=dead)
        peer = self._worker_peers.pop(worker_id, None)
        if peer is not None:
            peer.worker_id = None
            if peer.sock in self._peers and dead:
                del self._peers[peer.sock]
                try:
                    peer.sock.close()
                except OSError:
                    pass
        if record is None:
            return
        self._log(f"worker {worker_id} ({record.name}) gone: {reason}")
        for key in self.queue.drop_worker(worker_id):
            entry = self.queue.entries.get(key)
            if entry is not None and entry.state == "queued":
                self.queue.enqueue(entry, self.leases)
        if record.inflight_key is not None:
            entry = self.queue.entries.get(record.inflight_key)
            if entry is not None and entry.state == "assigned" \
                    and entry.assigned_to == worker_id:
                self.queue.requeue(entry.key, self.leases)
                self._log(f"re-queued job {entry.key[:12]}… "
                          f"(attempt {entry.requeues + 1})")

    def _worker_died(self, worker_id: int, reason: str) -> None:
        self._worker_gone(worker_id, reason, dead=True)

    # -- jobs ----------------------------------------------------------------

    def _job_key(self, job: dict, hints) -> tuple[str, bool]:
        """The idempotency key of a submission: the PR-3 job cache key
        when the job is cacheable, else a unique throwaway key."""
        from ..campaign.runner import job_cache_key
        from ..campaign.spec import Job

        try:
            key = job_cache_key(Job.from_dict(job), hints)
        except Exception:  # noqa: BLE001 - malformed jobs stay schedulable
            key = None
        if key is not None:
            return key, True
        self._uncached_seq += 1
        return f"uncached:{self._uncached_seq}", False

    def _handle_submit(self, peer: _Peer, frame: dict) -> None:
        peer.role = "client"
        tag = frame.get("tag")
        job = frame.get("job")
        if not isinstance(job, dict):
            self._send(peer, {"op": "error", "tag": tag,
                              "message": "submit carries no job record"})
            return
        hints = list(frame.get("hints") or ())
        self.jobs_submitted += 1
        key, cacheable = self._job_key(job, hints)
        if cacheable:
            payload = self.cache.get(key)
            if payload is not None:
                self.cache_hits_served += 1
                self._send(peer, {"op": "result", "tag": tag, "key": key,
                                  "result": payload, "source": "cache",
                                  "worker": self._completed.get(key)})
                return
        entry = self.queue.entries.get(key)
        if entry is not None:
            # The same question is already in flight (another client,
            # or a re-submitted frame): one execution serves everyone.
            entry.waiters.append((peer, tag))
            self.jobs_coalesced += 1
            return
        entry = JobEntry(key=key, job=job, hints=hints,
                         variant=str(job.get("variant_id") or ""),
                         cacheable=cacheable,
                         submitted_at=time.monotonic(),
                         waiters=[(peer, tag)])
        self.queue.enqueue(entry, self.leases)
        self._dispatch()

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for record in self.leases.idle_workers():
                peer = self._worker_peers.get(record.worker_id)
                if peer is None:
                    continue
                nxt = self.queue.next_for(record)
                if nxt is None:
                    continue
                entry, stolen = nxt
                if not self._send(peer, {"op": "job", "key": entry.key,
                                         "job": entry.job,
                                         "hints": entry.hints}):
                    # The send dropped the peer and re-placed the
                    # worker's work; start the scan over.
                    self.queue.enqueue(entry, self.leases)
                    progress = True
                    break
                self.queue.assign(entry, record, time.monotonic())
                self._log(f"job {entry.key[:12]}… → worker "
                          f"{record.worker_id}"
                          + (" (stolen)" if stolen else ""))
                progress = True

    def _deliver(self, entry: JobEntry, payload: dict, source: str,
                 worker_id: int | None) -> None:
        for peer, tag in entry.waiters:
            self._send(peer, {"op": "result", "tag": tag, "key": entry.key,
                              "result": payload, "source": source,
                              "worker": worker_id})
        entry.waiters = []

    def _store(self, entry: JobEntry, payload: dict) -> None:
        if entry.cacheable and payload.get("verdict") not in ("timeout",
                                                              "error"):
            self.cache.put(entry.key, payload)

    def _expire_entry(self, entry: JobEntry) -> None:
        from ..campaign.executors import _timeout_result
        from ..campaign.spec import Job

        self.jobs_timed_out += 1
        payload = _timeout_result(Job.from_dict(entry.job)).to_dict()
        self._deliver(entry, payload, "timeout", entry.assigned_to)
        self.queue.finish(entry.key)
        self._expired.add(entry.key)
        self._log(f"job {entry.key[:12]}… timed out on worker "
                  f"{entry.assigned_to}")
        # The worker is still grinding; it stays busy until its (late)
        # result arrives and is folded in as cache-only.

    def _handle_result(self, peer: _Peer, frame: dict) -> None:
        record = self.leases.get(peer.worker_id) \
            if peer.worker_id is not None else None
        if record is None:
            self._send(peer, {"op": "error",
                              "message": "result from unregistered worker; "
                                         "re-register"})
            return
        key = frame.get("key")
        payload = frame.get("result")
        if record.inflight_key == key:
            record.state = "idle"
            record.inflight_key = None
        if key in self._completed:
            self.duplicate_results += 1
            record.duplicates += 1
            self._log(f"duplicate result for {str(key)[:12]}… ignored")
            self._dispatch()
            return
        entry = self.queue.entries.get(key)
        if entry is None:
            # Late result for a job already timed out (or a key we
            # never assigned): keep the verdict — solved anywhere is
            # solved everywhere — but nobody is waiting.
            if key in self._expired and isinstance(payload, dict):
                self.late_results += 1
                self._expired.discard(key)
                self._completed[key] = record.worker_id
                fake = JobEntry(key=key, job=payload.get("job") or {},
                                hints=[], variant="", cacheable=True,
                                submitted_at=time.monotonic())
                self._store(fake, payload)
            else:
                self.duplicate_results += 1
                record.duplicates += 1
            self._dispatch()
            return
        self.queue.finish(key)
        self._completed[key] = record.worker_id
        self.jobs_completed += 1
        record.completed += 1
        if frame.get("cache_hit"):
            record.cache_hits += 1
        if isinstance(payload, dict):
            self._store(entry, payload)
            self._deliver(entry, payload, "worker", record.worker_id)
        self._dispatch()

    # -- the replicated cache ------------------------------------------------

    def _handle_cache_query(self, peer: _Peer, frame: dict) -> None:
        peer.role = "client"
        key = frame.get("key")
        payload = self.cache.get(key) if isinstance(key, str) else None
        self.cache_queries += 1
        if payload is not None:
            self.cache_query_hits += 1
        self._send(peer, {"op": "cache_result", "key": key,
                          "payload": payload})

    def _handle_cache_push(self, peer: _Peer, frame: dict) -> None:
        peer.role = "client"
        key = frame.get("key")
        payload = frame.get("payload")
        stored = False
        if isinstance(key, str) and isinstance(payload, dict):
            if key in self.cache:
                self.cache_push_duplicates += 1
            else:
                self.cache.put(key, payload)
                stored = True
                self.cache_pushes += 1
        self._send(peer, {"op": "cache_ack", "key": key, "stored": stored})

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready fabric counters (the ``status`` op's payload)."""
        now = time.monotonic()
        return {
            "coordinator": {
                "protocol": PROTOCOL_VERSION,
                "address": f"{self.host}:{self.port}",
                "uptime_s": round(now - self._started, 3),
                "lease_s": self.lease_seconds,
                "workers": len(self.leases),
                "queue_depth": self.queue.depth(),
                "inflight": self.queue.inflight(),
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "jobs_coalesced": self.jobs_coalesced,
                "jobs_requeued": self.queue.requeues,
                "jobs_timed_out": self.jobs_timed_out,
                "duplicate_results": self.duplicate_results,
                "late_results": self.late_results,
                "steals": self.queue.steals,
                "dead_workers": self.leases.dead,
                "departed_workers": self.leases.departed,
                "cache": {
                    "entries": len(self.cache),
                    "hits_served": self.cache_hits_served,
                    "queries": self.cache_queries,
                    "query_hits": self.cache_query_hits,
                    "pushes": self.cache_pushes,
                    "push_duplicates": self.cache_push_duplicates,
                },
            },
            "workers": {
                str(w.worker_id): w.status(now)
                for w in self.leases.workers()
            },
        }
