"""Verification as a service: the distributed campaign fabric.

``repro.fabric`` turns the PR-3 point-to-point transport into a
long-running service: a :class:`~repro.fabric.coordinator.Coordinator`
daemon accepts campaign jobs from any number of clients, schedules them
over a dynamic pool of workers (heartbeat leases, dead-worker re-queue,
locality-aware stealing) and replicates the content-addressed verdict
cache so a job solved anywhere is solved everywhere.

Quick start::

    python -m repro.fabric coordinator --port 7400
    python -m repro.verify worker --connect 127.0.0.1:7400 --reconnect
    python -m repro.campaign smoke --executor fabric --connect 127.0.0.1:7400
    python -m repro.fabric status --connect 127.0.0.1:7400

This module also exposes the two tiny client helpers the CLI and the
test-suite share: :func:`fetch_status` and :func:`request_shutdown`.
"""

from __future__ import annotations

import socket

from ..verify.protocol import (
    PROTOCOL_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)
from .chaos import ChaosCrash, ChaosEngine, FaultPlan
from .coordinator import Coordinator, StandbyCoordinator
from .journal import Journal, ReplayState, read_journal, replay
from .state import JobEntry, JobQueue, LeaseTable, WorkerRecord
from .worker import WorkerSupervisor, backoff_delay

__all__ = [
    "Coordinator",
    "StandbyCoordinator",
    "WorkerSupervisor",
    "backoff_delay",
    "LeaseTable",
    "WorkerRecord",
    "JobQueue",
    "JobEntry",
    "Journal",
    "ReplayState",
    "replay",
    "read_journal",
    "FaultPlan",
    "ChaosEngine",
    "ChaosCrash",
    "fetch_status",
    "request_shutdown",
]


def _client_op(connect, request: dict, reply_op: str,
               timeout: float = 10.0) -> dict:
    address = parse_address(connect) if isinstance(connect, str) \
        else tuple(connect)
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        send_frame(sock, {"op": "hello", "role": "cli",
                          "protocol": PROTOCOL_VERSION})
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("op") != "welcome":
            message = (welcome or {}).get("message", "connection closed")
            raise ConnectionError(
                f"coordinator {address[0]}:{address[1]} refused us: "
                f"{message}")
        send_frame(sock, request)
        reply = recv_frame(sock)
        if reply is None or reply.get("op") != reply_op:
            message = (reply or {}).get("message", "connection closed")
            raise ConnectionError(
                f"unexpected {request['op']} reply: {message}")
        return reply


def fetch_status(connect, timeout: float = 10.0) -> dict:
    """The coordinator's ``status`` payload (see ``Coordinator.status``)."""
    return _client_op(connect, {"op": "status"}, "status",
                      timeout)["status"]


def request_shutdown(connect, timeout: float = 10.0) -> None:
    """Ask a coordinator to shut down (it tells its workers first)."""
    _client_op(connect, {"op": "shutdown"}, "ok", timeout)
