"""The fabric CLI.

Run a coordinator daemon (``--state-dir`` makes it crash-safe: a
restart replays the write-ahead journal and resumes the same jobs)::

    python -m repro.fabric coordinator --port 7400 --state-dir .fabric

Run a warm standby that tails the primary's journal and promotes
itself when the primary dies::

    python -m repro.fabric coordinator --port 7401 \\
        --standby-of 127.0.0.1:7400 --state-dir .fabric-standby

Enrol a worker (``--connect`` accepts a comma-separated failover
list: primary first, standbys after)::

    python -m repro.fabric worker --connect 127.0.0.1:7400,127.0.0.1:7401 \\
        --reconnect

Inspect a running fabric::

    python -m repro.fabric status --connect 127.0.0.1:7400

Run the self-contained acceptance smoke (coordinator + N workers, one
SIGKILLed mid-campaign, bit-identity vs serial, cached-rerun speedup),
or the deterministic fault-injection smoke::

    python -m repro.fabric smoke --status-json fabric_status.json
    python -m repro.fabric smoke --chaos seed=2

Errors print a single-line ``error:`` diagnostic and exit 2.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys


def _coordinator(args) -> int:
    from .coordinator import Coordinator, StandbyCoordinator

    if args.standby_of:
        standby = StandbyCoordinator(
            args.standby_of,
            host=args.host, port=args.port,
            lease_seconds=args.lease_seconds,
            cache_dir=args.cache_dir,
            state_dir=args.state_dir,
            max_frame=args.max_frame,
            quiet=args.quiet,
        )
        signal.signal(signal.SIGTERM, lambda *_: standby.stop())
        signal.signal(signal.SIGINT, lambda *_: standby.stop())
        return standby.run()

    coordinator = Coordinator(
        host=args.host, port=args.port,
        lease_seconds=args.lease_seconds,
        cache_dir=args.cache_dir,
        max_frame=args.max_frame,
        quiet=args.quiet,
        state_dir=args.state_dir,
        default_max_attempts=args.max_attempts,
    )
    # SIGINT/SIGTERM take the graceful path: snapshot durable state,
    # send every worker a goodbye, exit 0.
    signal.signal(signal.SIGTERM, lambda *_: coordinator.shutdown())
    signal.signal(signal.SIGINT, lambda *_: coordinator.shutdown())
    return coordinator.serve()


def _worker(args) -> int:
    from .worker import WorkerSupervisor

    supervisor = WorkerSupervisor(
        args.connect,
        name=args.name,
        reconnect=args.reconnect,
        cache_dir=args.cache_dir,
        max_frame=args.max_frame,
        quiet=args.quiet,
    )
    signal.signal(signal.SIGTERM, lambda *_: supervisor.stop())
    return supervisor.run()


def _status(args) -> int:
    from ..upec.report import format_fabric_status
    from . import fetch_status

    status = fetch_status(args.connect, timeout=args.timeout)
    if args.json:
        import pathlib

        pathlib.Path(args.json).write_text(
            json.dumps(status, indent=2) + "\n")
        print(f"status JSON: {args.json}")
    else:
        print(format_fabric_status(status))
    return 0


def _shutdown(args) -> int:
    from . import request_shutdown

    request_shutdown(args.connect, timeout=args.timeout)
    print("coordinator shutting down")
    return 0


def _parse_chaos_seed(text: str) -> int:
    """``"seed=N"`` (or bare ``"N"``) → N."""
    value = text.partition("=")[2] if "=" in text else text
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"bad --chaos argument {text!r}; expected seed=N") from None


def _smoke(args) -> int:
    from .smoke import run_chaos_smoke, run_smoke

    try:
        if args.chaos is not None:
            run_chaos_smoke(
                seed=_parse_chaos_seed(args.chaos),
                workers=args.workers,
                status_json=args.status_json,
                state_dir=args.state_dir,
            )
        else:
            run_smoke(
                workers=args.workers,
                kill_one=not args.no_kill,
                status_json=args.status_json,
                speedup_floor=args.speedup_floor,
            )
    except AssertionError as exc:
        print(f"fabric smoke FAILED: {exc}", file=sys.stderr)
        return 1
    print("fabric smoke passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric",
        description="The distributed verification fabric: coordinator, "
                    "workers, status.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    coordinator = sub.add_parser(
        "coordinator", help="run the coordinator daemon")
    coordinator.add_argument("--host", default="127.0.0.1")
    coordinator.add_argument("--port", type=int, default=0,
                             help="bind port (0 = OS-assigned, announced "
                                  "on stdout)")
    coordinator.add_argument("--lease-seconds", type=float, default=15.0,
                             metavar="S",
                             help="worker heartbeat lease (default 15); a "
                                  "missed lease re-queues the worker's job")
    coordinator.add_argument("--cache-dir", metavar="PATH", default=None,
                             help="authoritative verdict-store directory "
                                  "(default: in-memory)")
    coordinator.add_argument("--max-frame", type=int, default=None,
                             metavar="BYTES",
                             help="per-frame byte cap (default: 64 MiB)")
    coordinator.add_argument("--state-dir", metavar="PATH", default=None,
                             help="durable-state directory (write-ahead "
                                  "journal + snapshots); a restarted "
                                  "coordinator replays it and resumes the "
                                  "same jobs")
    coordinator.add_argument("--standby-of", metavar="HOST:PORT",
                             default=None,
                             help="run as a warm standby: tail this "
                                  "primary's journal and promote to a "
                                  "full coordinator when it dies")
    coordinator.add_argument("--max-attempts", type=int, default=3,
                             metavar="N",
                             help="default per-job attempt budget before a "
                                  "terminal TIMEOUT/ERROR verdict "
                                  "(default 3; jobs may override)")
    coordinator.add_argument("--quiet", action="store_true")
    coordinator.set_defaults(func=_coordinator)

    worker = sub.add_parser("worker", help="enrol a worker with a "
                                           "coordinator")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT")
    worker.add_argument("--reconnect", action="store_true",
                        help="re-dial a lost coordinator under exponential "
                             "backoff + jitter instead of exiting")
    worker.add_argument("--name", default=None,
                        help="advertised worker name (default host:pid)")
    worker.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="local verdict-store tier backing the "
                             "replicated cache")
    worker.add_argument("--max-frame", type=int, default=None,
                        metavar="BYTES")
    worker.add_argument("--quiet", action="store_true")
    worker.set_defaults(func=_worker)

    status = sub.add_parser("status", help="fetch and render a "
                                           "coordinator's counters")
    status.add_argument("--connect", required=True, metavar="HOST:PORT")
    status.add_argument("--json", metavar="PATH", default=None,
                        help="write the raw status payload as JSON instead "
                             "of rendering it")
    status.add_argument("--timeout", type=float, default=10.0)
    status.set_defaults(func=_status)

    shutdown = sub.add_parser("shutdown", help="stop a coordinator (and "
                                               "its workers)")
    shutdown.add_argument("--connect", required=True, metavar="HOST:PORT")
    shutdown.add_argument("--timeout", type=float, default=10.0)
    shutdown.set_defaults(func=_shutdown)

    smoke = sub.add_parser(
        "smoke", help="self-contained acceptance smoke (coordinator + "
                      "workers + SIGKILL + cached rerun)")
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument("--no-kill", action="store_true",
                       help="skip the mid-campaign SIGKILL fault injection")
    smoke.add_argument("--status-json", metavar="PATH", default=None,
                       help="write the status-endpoint JSON artifact here")
    smoke.add_argument("--speedup-floor", type=float, default=5.0,
                       metavar="X",
                       help="minimum cached-rerun speedup (default 5)")
    smoke.add_argument("--chaos", nargs="?", const="seed=0", default=None,
                       metavar="seed=N",
                       help="run the deterministic fault-injection smoke "
                            "instead: sample a fault plan from seed N "
                            "(N%%3 picks coordinator-crash / worker-kill / "
                            "frame-fault profile) and assert the verdict "
                            "matrix stays bit-identical to serial")
    smoke.add_argument("--state-dir", metavar="PATH", default=None,
                       help="(with --chaos) durable-state directory to "
                            "crash-recover against (default: a temp dir)")
    smoke.set_defaults(func=_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError, ConnectionError,
            json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
