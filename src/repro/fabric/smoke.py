"""The fabric smoke harness: the ROADMAP acceptance run, scripted.

One call to :func:`run_smoke` stands up a coordinator (in a thread) and
N worker subprocesses, then proves the fabric's three contracts on the
CI smoke grid:

1. **Determinism** — the campaign run through
   :class:`~repro.campaign.executors.FabricExecutor` is bit-identical
   to :class:`~repro.campaign.executors.SerialExecutor` (verdict
   matrix, hint-seeded stats, leaking sets), optionally while one
   worker is SIGKILLed mid-campaign (dead-worker detection + re-queue).
2. **Replication** — a second identical campaign against the same
   coordinator is answered from the replicated verdict cache at least
   ``speedup_floor``× faster, with the ``status`` counters proving the
   hits were served remotely (``cache.hits_served``).
3. **Observability** — the ``status`` payload is fetched and written
   as a JSON artifact.

Shared by the CI ``fabric-smoke`` job (``python -m repro.fabric
smoke``) and the pytest integration test, so the gate and the local
test are the same code.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

from . import fetch_status, request_shutdown
from .chaos import ChaosCrash, ChaosEngine, FaultPlan
from .coordinator import Coordinator

__all__ = ["run_smoke", "run_chaos_smoke", "diff_campaigns",
           "spawn_fabric_worker"]


def diff_campaigns(reference, other) -> list[str]:
    """Bit-identity mismatches between two campaign runs ([] = equal).

    The comparison mirrors the executor-equivalence acceptance bar:
    verdicts, hint-seeding behaviour (``seeded``/``reran_unseeded``),
    the algorithms' ``final_s``/``leaking`` sets and per-iteration
    trajectories — everything except wall-clock and cache provenance.
    """
    problems: list[str] = []
    if len(reference.results) != len(other.results):
        return [f"result counts differ: {len(reference.results)} vs "
                f"{len(other.results)}"]
    for a, b in zip(reference.results, other.results):
        label = a.job.label()
        if a.job != b.job:
            problems.append(f"{label}: job records differ")
        if a.verdict != b.verdict:
            problems.append(f"{label}: verdict {a.verdict!r} vs "
                            f"{b.verdict!r}")
        if a.seeded != b.seeded:
            problems.append(f"{label}: seeded {a.seeded!r} vs {b.seeded!r}")
        if a.reran_unseeded != b.reran_unseeded:
            problems.append(f"{label}: reran_unseeded differs")
        da = (a.detail or {}).get("result")
        db = (b.detail or {}).get("result")
        if (da is None) != (db is None):
            problems.append(f"{label}: detail.result presence differs")
        elif da:
            for field in ("final_s", "leaking"):
                if da.get(field) != db.get(field):
                    problems.append(f"{label}: {field} differs")
            trajectory = [(i["s_size"], i["removed"], i["persistent_hits"])
                          for i in da.get("iterations", ())]
            other_trajectory = [(i["s_size"], i["removed"],
                                 i["persistent_hits"])
                                for i in db.get("iterations", ())]
            if trajectory != other_trajectory:
                problems.append(f"{label}: iteration trajectories differ")
        else:
            stripped_a = {k: v for k, v in (a.detail or {}).items()
                          if k != "trace"}
            stripped_b = {k: v for k, v in (b.detail or {}).items()
                          if k != "trace"}
            if stripped_a != stripped_b:
                problems.append(f"{label}: detail differs")
    return problems


def _subprocess_env() -> dict:
    import repro

    src = pathlib.Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONHASHSEED", "0")
    return env


def spawn_fabric_worker(address: str, reconnect: bool = True,
                        name: str | None = None) -> subprocess.Popen:
    """One ``python -m repro.verify worker --connect`` subprocess."""
    argv = [sys.executable, "-m", "repro.verify", "worker",
            "--connect", address, "--quiet"]
    if reconnect:
        argv.append("--reconnect")
    if name:
        argv += ["--name", name]
    return subprocess.Popen(argv, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL,
                            env=_subprocess_env())


def _wait_for_workers(address: str, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status = fetch_status(address)
        except (OSError, ConnectionError):
            status = None
        if status and status["coordinator"]["workers"] >= count:
            return
        time.sleep(0.1)
    raise RuntimeError(
        f"{count} worker(s) did not register within {timeout:.0f}s")


def run_smoke(workers: int = 2, kill_one: bool = True,
              status_json: str | None = None,
              speedup_floor: float = 5.0,
              lease_seconds: float = 3.0,
              log=print) -> dict:
    """Run the fabric acceptance smoke; raises on any failed check.

    Returns a JSON-ready summary (also the artifact content): the
    verdict matrix, wall-clock of each phase, the speedup of the cached
    rerun and the final coordinator status.
    """
    from ..campaign.executors import FabricExecutor, SerialExecutor
    from ..campaign.grids import smoke_spec
    from ..campaign.runner import run_campaign

    coordinator = Coordinator(port=0, lease_seconds=lease_seconds,
                              quiet=True)
    host, port = coordinator.bind()
    address = f"{host}:{port}"
    thread = threading.Thread(target=coordinator.serve,
                              name="fabric-coordinator", daemon=True)
    thread.start()
    procs: list[subprocess.Popen] = []
    try:
        procs = [spawn_fabric_worker(address, name=f"smoke-{i}")
                 for i in range(workers)]
        _wait_for_workers(address, workers)
        log(f"fabric up: coordinator {address}, {workers} worker(s)")

        log("serial reference run…")
        serial = run_campaign(smoke_spec(), executor=SerialExecutor())

        victim = procs[0] if kill_one and procs else None
        fired = {"done": False}

        def assassinate(_result) -> None:
            # SIGKILL one worker the moment the first result lands:
            # the fabric must detect the death and re-queue its work.
            if victim is not None and not fired["done"]:
                fired["done"] = True
                victim.send_signal(signal.SIGKILL)
                log(f"SIGKILLed worker pid {victim.pid} mid-campaign")

        log("fabric run…" + (" (with mid-campaign SIGKILL)"
                             if victim is not None else ""))
        fabric = run_campaign(
            smoke_spec(),
            executor=FabricExecutor(address),
            on_result=assassinate if victim is not None else None,
        )
        problems = diff_campaigns(serial, fabric)
        if problems:
            raise AssertionError(
                "fabric run is not bit-identical to serial:\n  "
                + "\n  ".join(problems))
        log(f"verdict matrix identical to serial "
            f"({fabric.wall_seconds:.2f}s wall)")

        log("cached rerun…")
        rerun = run_campaign(smoke_spec(), executor=FabricExecutor(address))
        if rerun.verdicts() != serial.verdicts():
            raise AssertionError(
                f"cached rerun verdicts differ: {rerun.verdicts()!r} vs "
                f"{serial.verdicts()!r}")
        uncached = [r.job.label() for r in rerun.results if not r.cached]
        if uncached:
            raise AssertionError(
                f"rerun jobs not served from the replicated cache: "
                f"{uncached}")
        speedup = fabric.wall_seconds / max(rerun.wall_seconds, 1e-9)
        if speedup < speedup_floor:
            raise AssertionError(
                f"cached rerun speedup {speedup:.1f}x is below the "
                f"{speedup_floor:.0f}x floor ({fabric.wall_seconds:.2f}s "
                f"-> {rerun.wall_seconds:.2f}s)")
        log(f"cached rerun {speedup:.0f}x faster "
            f"({fabric.wall_seconds:.2f}s -> {rerun.wall_seconds:.3f}s)")

        status = fetch_status(address)
        hits = status["coordinator"]["cache"]["hits_served"]
        if hits < len(rerun.results):
            raise AssertionError(
                f"status counters show only {hits} remotely-served cache "
                f"hit(s); expected >= {len(rerun.results)}")
        if victim is not None and status["coordinator"]["dead_workers"] < 1:
            raise AssertionError(
                "status counters show no dead worker despite the SIGKILL")

        summary = {
            "coordinator": address,
            "workers": workers,
            "killed_one": victim is not None,
            "verdicts": serial.verdicts(),
            "serial_wall_s": round(serial.wall_seconds, 3),
            "fabric_wall_s": round(fabric.wall_seconds, 3),
            "cached_rerun_wall_s": round(rerun.wall_seconds, 3),
            "cached_speedup": round(speedup, 1),
            "status": status,
        }
        if status_json:
            path = pathlib.Path(status_json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(summary, indent=2) + "\n")
            log(f"status artifact: {path}")
        return summary
    finally:
        try:
            request_shutdown(address)
        except (OSError, ConnectionError):
            coordinator.shutdown()
        thread.join(timeout=10)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    proc.wait(timeout=5)


def run_chaos_smoke(seed: int = 0, workers: int = 2,
                    status_json: str | None = None,
                    lease_seconds: float = 2.0,
                    state_dir: str | None = None,
                    log=print) -> dict:
    """The deterministic fault-injection smoke: chaos, then bit-identity.

    Samples a :class:`~repro.fabric.chaos.FaultPlan` from ``seed``
    (``seed % 3`` picks the profile: 0 = coordinator crash, 1 = worker
    SIGKILL, 2 = frame drop/duplicate/delay), runs the CI smoke grid
    through the faulted fabric — restarting the coordinator against the
    same ``--state-dir`` whenever an injected crash kills it — and
    asserts the verdict matrix is **bit-identical** to a serial
    reference run.  Raises :class:`AssertionError` on any divergence or
    on a plan whose faults never fired.
    """
    import tempfile

    from ..campaign.executors import FabricExecutor, SerialExecutor
    from ..campaign.grids import smoke_spec
    from ..campaign.runner import run_campaign

    plan = FaultPlan.sample(seed)
    engine = ChaosEngine(plan)
    log(f"chaos plan (seed {seed}): {plan.describe()}")

    log("serial reference run…")
    serial = run_campaign(smoke_spec(), executor=SerialExecutor())

    own_state = None
    if state_dir is None:
        own_state = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        state_dir = own_state.name

    coordinator = Coordinator(port=0, lease_seconds=lease_seconds,
                              quiet=True, state_dir=state_dir, chaos=engine)
    host, port = coordinator.bind()
    address = f"{host}:{port}"
    current = {"c": coordinator}
    crashes: list[str] = []
    stopping = threading.Event()

    def supervise() -> None:
        # The ops-runbook loop, in miniature: serve until a chaos crash
        # (SIGKILL-equivalent — no goodbye, no snapshot), then restart
        # on the same port against the same state dir and let WAL
        # recovery prove itself.
        while True:
            try:
                current["c"].serve()
                return
            except ChaosCrash as crash:
                crashes.append(crash.point)
                log(f"chaos: coordinator crashed at {crash.point!r}; "
                    f"restarting on {address}")
            except Exception as exc:  # noqa: BLE001 - surfaced via summary
                if not stopping.is_set():
                    crashes.append(f"unexpected: {exc}")
                return
            if stopping.is_set():
                return
            successor = Coordinator(host=host, port=port,
                                    lease_seconds=lease_seconds, quiet=True,
                                    state_dir=state_dir, chaos=engine)
            for _ in range(50):
                try:
                    successor.bind()
                    break
                except OSError:
                    time.sleep(0.1)
            current["c"] = successor

    thread = threading.Thread(target=supervise, name="fabric-supervisor",
                              daemon=True)
    thread.start()
    procs: list[subprocess.Popen] = []
    try:
        procs = [spawn_fabric_worker(address, name=f"chaos-{i}")
                 for i in range(workers)]
        _wait_for_workers(address, workers)
        log(f"fabric up: coordinator {address} (state {state_dir}), "
            f"{workers} worker(s)")

        results_seen = {"n": 0}
        killed = {"pid": None}

        def on_result(_result) -> None:
            results_seen["n"] += 1
            if (plan.kill_worker_after_results is not None
                    and killed["pid"] is None
                    and results_seen["n"] >= plan.kill_worker_after_results):
                victim = procs[(plan.kill_worker_index or 0) % len(procs)]
                if victim.poll() is None:
                    victim.send_signal(signal.SIGKILL)
                    killed["pid"] = victim.pid
                    log(f"chaos: SIGKILLed worker pid {victim.pid} after "
                        f"result {results_seen['n']}")

        log("fabric run under chaos…")
        fabric = run_campaign(
            smoke_spec(),
            executor=FabricExecutor(address, submit_timeout=120.0),
            on_result=on_result,
        )
        problems = diff_campaigns(serial, fabric)
        if problems:
            raise AssertionError(
                "chaos run is not bit-identical to serial:\n  "
                + "\n  ".join(problems))
        log(f"verdict matrix identical to serial "
            f"({fabric.wall_seconds:.2f}s wall)")

        # The plan must actually have bitten — a chaos smoke whose
        # faults never fire is a vacuous pass.
        profile = seed % 3
        if profile == 0 and not crashes:
            raise AssertionError(
                "profile 0 planned a coordinator crash but none fired")
        if profile == 1 and killed["pid"] is None:
            raise AssertionError(
                "profile 1 planned a worker SIGKILL but none fired")
        if profile == 2 and not engine.faults_fired:
            raise AssertionError(
                "profile 2 planned frame faults but none fired")

        status = None
        try:
            status = fetch_status(address)
        except (OSError, ConnectionError):
            pass  # executor may have finished inline after a late crash

        summary = {
            "seed": seed,
            "plan": plan.to_dict(),
            "profile": profile,
            "coordinator": address,
            "state_dir": str(state_dir),
            "workers": workers,
            "crashes": crashes,
            "killed_worker_pid": killed["pid"],
            "faults_fired": list(engine.faults_fired),
            "verdicts": serial.verdicts(),
            "serial_wall_s": round(serial.wall_seconds, 3),
            "fabric_wall_s": round(fabric.wall_seconds, 3),
            "status": status,
        }
        if status_json:
            path = pathlib.Path(status_json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(summary, indent=2) + "\n")
            log(f"status artifact: {path}")
        return summary
    finally:
        stopping.set()
        try:
            request_shutdown(address)
        except (OSError, ConnectionError):
            current["c"].shutdown()
        thread.join(timeout=10)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    proc.wait(timeout=5)
        if own_state is not None:
            own_state.cleanup()
