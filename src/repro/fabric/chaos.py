"""Deterministic fault injection for the fabric: seeded, serializable.

A :class:`FaultPlan` is a pure value sampled from a seed — the same seed
always yields the same faults, so a chaos failure in CI reproduces
locally with ``python -m repro.fabric smoke --chaos seed=N``.  The plan
says *what* to break; a :class:`ChaosEngine` holds the runtime counters
that decide *when* each fault fires, so the plan survives serialization
while the engine survives a coordinator restart (crash points fire
once, not once per incarnation).

Three fault families, matching how the fabric actually dies in the
field:

* **Coordinator crash points** — ``crash_submit_after`` kills the
  coordinator *after* the Nth submit is journalled (proving the WAL
  holds the job), ``crash_result_before_ack`` kills it after the Nth
  result is journalled but *before* the client hears about it (proving
  duplicate-result folding).  Both raise :class:`ChaosCrash`, which the
  smoke harness treats as SIGKILL-equivalent.
* **Frame faults** — drop/duplicate/delay specific ops on the
  coordinator's side of the wire (``drop_ops``/``dup_ops``/
  ``delay_ops``), exercising the heartbeat-resync and retry machinery.
* **Worker kills** — ``kill_worker_after_results`` SIGKILLs one worker
  subprocess after it has produced N results, exercising dead-worker
  re-queue on a *different* worker.

The engine is threaded explicitly (a ``chaos=`` parameter), never a
module global: the smoke harness runs the coordinator in-thread with
the client in the same process, and a global would fault the client's
own frames.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "ChaosEngine", "ChaosCrash"]


class ChaosCrash(Exception):
    """An injected coordinator crash (SIGKILL-equivalent: no cleanup)."""

    def __init__(self, point: str):
        super().__init__(f"injected coordinator crash at {point}")
        self.point = point


#: Ops that are safe to drop: the fabric must recover each via lease
#: sweeps / heartbeat resync.  ``submit`` is deliberately excluded — a
#: dropped submit wedges the *client*, which is outside the fabric's
#: recovery contract (the client's own submit timeout covers it).
_DROPPABLE_OPS = ("job", "result", "lease", "heartbeat")


@dataclass(frozen=True)
class FaultPlan:
    """What to break, sampled deterministically from ``seed``.

    ``seed % 3`` picks the fault family so the three fixed CI seeds are
    guaranteed to cover all of them: 0 → coordinator crash points,
    1 → worker kill, 2 → frame drops/dups/delays.
    """

    seed: int
    crash_submit_after: int | None = None
    crash_result_before_ack: int | None = None
    kill_worker_index: int | None = None
    kill_worker_after_results: int | None = None
    drop_ops: dict = field(default_factory=dict)
    dup_ops: dict = field(default_factory=dict)
    delay_ops: dict = field(default_factory=dict)

    @classmethod
    def sample(cls, seed: int) -> "FaultPlan":
        rng = random.Random(seed)
        profile = seed % 3
        if profile == 0:
            # Coordinator crash: either right after a submit is
            # journalled, or between journalling a result and acking it.
            if rng.random() < 0.5:
                return cls(seed=seed,
                           crash_submit_after=rng.randint(1, 3))
            return cls(seed=seed,
                       crash_result_before_ack=rng.randint(1, 2))
        if profile == 1:
            return cls(seed=seed,
                       kill_worker_index=rng.randint(0, 1),
                       kill_worker_after_results=rng.randint(1, 2))
        # profile == 2: frame faults.  Bounded counts per op — chaos
        # must be finite or liveness is unprovable.
        drop_ops: dict = {}
        dup_ops: dict = {}
        delay_ops: dict = {}
        for op in rng.sample(_DROPPABLE_OPS, k=2):
            drop_ops[op] = rng.randint(1, 2)
        if rng.random() < 0.5:
            dup_ops[rng.choice(("result", "lease"))] = rng.randint(1, 2)
        if rng.random() < 0.5:
            delay_ops[rng.choice(_DROPPABLE_OPS)] = round(
                rng.uniform(0.01, 0.1), 3)
        return cls(seed=seed, drop_ops=drop_ops, dup_ops=dup_ops,
                   delay_ops=delay_ops)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash_submit_after": self.crash_submit_after,
            "crash_result_before_ack": self.crash_result_before_ack,
            "kill_worker_index": self.kill_worker_index,
            "kill_worker_after_results": self.kill_worker_after_results,
            "drop_ops": dict(self.drop_ops),
            "dup_ops": dict(self.dup_ops),
            "delay_ops": dict(self.delay_ops),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed") or 0),
            crash_submit_after=data.get("crash_submit_after"),
            crash_result_before_ack=data.get("crash_result_before_ack"),
            kill_worker_index=data.get("kill_worker_index"),
            kill_worker_after_results=data.get("kill_worker_after_results"),
            drop_ops=dict(data.get("drop_ops") or {}),
            dup_ops=dict(data.get("dup_ops") or {}),
            delay_ops=dict(data.get("delay_ops") or {}),
        )

    def describe(self) -> str:
        parts = []
        if self.crash_submit_after is not None:
            parts.append(f"crash after submit #{self.crash_submit_after}")
        if self.crash_result_before_ack is not None:
            parts.append(
                f"crash before ack of result #{self.crash_result_before_ack}")
        if self.kill_worker_after_results is not None:
            parts.append(
                f"kill worker {self.kill_worker_index} after "
                f"{self.kill_worker_after_results} result(s)")
        if self.drop_ops:
            parts.append("drop " + ",".join(
                f"{op}x{n}" for op, n in sorted(self.drop_ops.items())))
        if self.dup_ops:
            parts.append("dup " + ",".join(
                f"{op}x{n}" for op, n in sorted(self.dup_ops.items())))
        if self.delay_ops:
            parts.append("delay " + ",".join(
                f"{op}+{s}s" for op, s in sorted(self.delay_ops.items())))
        return "; ".join(parts) or "no faults"


class ChaosEngine:
    """Runtime counters deciding when the plan's faults fire.

    One engine spans every coordinator incarnation in a chaos run —
    crash points fire exactly once, frame-fault budgets deplete
    globally — which is what makes chaos runs terminate.
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._submits = 0
        self._results = 0
        self._crashed_points: set[str] = set()
        self._drop_left = dict(plan.drop_ops)
        self._dup_left = dict(plan.dup_ops)
        self.faults_fired: list[str] = []

    # -- coordinator crash points -------------------------------------------

    def on_submit_journalled(self) -> None:
        """Crash point: the submit is durable, the client is unacked."""
        self._submits += 1
        n = self.plan.crash_submit_after
        if (n is not None and self._submits >= n
                and "submit_after" not in self._crashed_points):
            self._crashed_points.add("submit_after")
            self.faults_fired.append(f"crash@submit#{self._submits}")
            raise ChaosCrash("submit-after-journal")

    def on_result_journalled(self) -> None:
        """Crash point: the result is durable, nobody has been told."""
        self._results += 1
        n = self.plan.crash_result_before_ack
        if (n is not None and self._results >= n
                and "result_before_ack" not in self._crashed_points):
            self._crashed_points.add("result_before_ack")
            self.faults_fired.append(f"crash@result#{self._results}")
            raise ChaosCrash("result-before-ack")

    # -- frame faults --------------------------------------------------------

    def should_drop(self, op: str) -> bool:
        left = self._drop_left.get(op, 0)
        if left > 0:
            self._drop_left[op] = left - 1
            self.faults_fired.append(f"drop:{op}")
            return True
        return False

    def should_duplicate(self, op: str) -> bool:
        left = self._dup_left.get(op, 0)
        if left > 0:
            self._dup_left[op] = left - 1
            self.faults_fired.append(f"dup:{op}")
            return True
        return False

    def maybe_delay(self, op: str) -> None:
        delay = self.plan.delay_ops.get(op)
        if delay:
            self._sleep(delay)

    def status(self) -> dict:
        return {
            "seed": self.plan.seed,
            "plan": self.plan.describe(),
            "faults_fired": list(self.faults_fired),
        }
