"""The fabric worker supervisor.

:class:`WorkerSupervisor` owns one connection to a coordinator: it
registers (``register``/``registered``), heartbeats at a third of the
granted lease, runs assigned jobs (``job`` → ``result``) and survives
the coordinator going away — with ``--reconnect`` it re-dials under
exponential backoff with jitter and re-registers, picking up a fresh
worker id and whatever work the queue holds.

Layout: the supervisor's main thread owns the socket and a ``select``
loop over ``[socket, wake_pipe]``; a job runs on a worker thread
(:func:`repro.campaign.runner.run_job` is CPU-bound but must not block
heartbeats) and signals completion through the wake pipe, so every
frame — register, heartbeat, result, goodbye — is sent from exactly one
thread.

Verdict-cache replication happens here: each worker holds a
:class:`~repro.verify.cache.VerdictCache` whose remote tier points back
at the coordinator.  An assigned job is first looked up locally then
(fetch-on-miss, ``cache_query``) in the coordinator's authoritative
store; a freshly solved job is written locally and pushed back
(``cache_push``), so a verdict solved on any host answers every host.

Graceful shutdown (SIGTERM, or a coordinator ``shutdown`` frame):
finish the in-flight job, send its result, say ``goodbye``, exit 0 —
never drop a result on the floor.
"""

from __future__ import annotations

import os
import random
import select
import socket
import threading
import time

from ..verify.cache import VerdictCache
from ..verify.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_endpoints,
    recv_frame,
    send_frame,
)

__all__ = ["WorkerSupervisor", "backoff_delay"]


def backoff_delay(attempt: int, base: float = 0.5, cap: float = 30.0,
                  rng=None) -> float:
    """Reconnect delay before attempt ``attempt`` (1-based).

    Exponential (``base * 2**(attempt-1)``) capped at ``cap``, with
    multiplicative jitter in ``[0.5, 1.0)`` so a fleet of workers that
    lost the same coordinator does not re-dial in lockstep.  Pure —
    pass an ``rng`` with a ``uniform`` method to pin the jitter.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    return delay * (rng or random).uniform(0.5, 1.0)


class _JobRun:
    """One in-flight assignment and the thread grinding on it."""

    __slots__ = ("key", "job", "hints", "cacheable", "thread", "result")

    def __init__(self, key: str, job: dict, hints: list, cacheable: bool):
        self.key = key
        self.job = job
        self.hints = hints
        self.cacheable = cacheable
        self.thread: threading.Thread | None = None
        self.result = None  # JobResult once the thread finished


class WorkerSupervisor:
    """One fabric worker: register, heartbeat, run jobs, reconnect.

    Args:
        connect: coordinator endpoint(s): ``"host:port"``, a
            comma-separated failover list
            (``"primary:9000,standby:9001"``), a tuple, or a list of
            either.  Each dial attempt tries the next endpoint in the
            rotation, so a worker follows a promoted standby without
            operator action.
        name: advertised worker name (default ``host:pid``).
        reconnect: keep re-dialling (exponential backoff + jitter) when
            the coordinator goes away instead of exiting 1.
        backoff_base / backoff_max: the backoff schedule, in seconds.
        cache_dir: directory for the local verdict-store tier (None =
            memory only); the remote tier always points back at the
            coordinator.
        max_frame: per-frame byte cap (None = protocol default).
        connect_timeout: per-dial TCP budget.
        quiet: suppress per-job log lines.
        rng: jitter source (tests pin it).
    """

    def __init__(self, connect, name: str | None = None,
                 reconnect: bool = False,
                 backoff_base: float = 0.5, backoff_max: float = 30.0,
                 cache_dir=None, max_frame: int | None = None,
                 connect_timeout: float = 5.0, quiet: bool = False,
                 rng=None):
        if isinstance(connect, tuple):
            connect = [connect]
        self.endpoints = parse_endpoints(connect)
        self.address = self.endpoints[0]
        self._endpoint_idx = 0
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.reconnect = reconnect
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_frame = max_frame
        self.connect_timeout = connect_timeout
        self.quiet = quiet
        self.rng = rng or random
        self.cache = VerdictCache(
            cache_dir,
            remote=self.address,
            connect_timeout=connect_timeout,
        )
        self.worker_id: int | None = None
        self.lease_seconds = 15.0
        self.completed = 0
        self.cache_hits = 0
        self.reconnects = 0
        self._wake_r, self._wake_w = os.pipe()
        self._stopping = False
        self._current: _JobRun | None = None
        self._sock: socket.socket | None = None
        self._registered_this_dial = False

    # -- lifecycle -----------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id or '?'}] {message}", flush=True)

    def stop(self) -> None:
        """Request a graceful drain-and-exit (thread/signal safe)."""
        self._stopping = True
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - already closed
            pass

    def run(self) -> int:
        """Serve until stopped; the process exit code.

        0 = clean shutdown (SIGTERM drain or coordinator ``shutdown``),
        1 = connection lost without ``--reconnect``, 2 = fatal protocol
        mismatch or unreachable coordinator on the first dial.
        """
        attempt = 0
        while True:
            self._registered_this_dial = False
            outcome = self._run_once()
            if outcome == "done":
                return 0
            if outcome == "fatal":
                return 2
            # outcome == "lost"
            if self._registered_this_dial:
                attempt = 0  # a healthy stint resets the backoff schedule
            if self._stopping:
                return 0
            if not self.reconnect:
                host, port = self.address
                print(f"error: lost coordinator {host}:{port} "
                      f"(run with --reconnect to keep retrying)", flush=True)
                return 1
            attempt += 1
            self.reconnects += 1
            delay = backoff_delay(attempt, self.backoff_base,
                                  self.backoff_max, self.rng)
            self._log(f"coordinator away; retrying in {delay:.2f}s "
                      f"(attempt {attempt})")
            if self._sleep_interruptibly(delay):
                return 0

    def _sleep_interruptibly(self, delay: float) -> bool:
        """Sleep up to ``delay``; True when stop() interrupted it."""
        deadline = time.monotonic() + delay
        while not self._stopping:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            readable, _, _ = select.select([self._wake_r], [], [], remaining)
            if readable:
                os.read(self._wake_r, 4096)
        return True

    # -- one connection ------------------------------------------------------

    def _inflight_key(self) -> str | None:
        """The key this worker is grinding on right now, if any —
        carried in register and heartbeat frames so the coordinator can
        re-adopt (restart) or resync (lost frame) the assignment."""
        run = self._current
        return run.key if run is not None else None

    def _connect_and_register(self) -> str | None:
        sock = None
        # Walk the failover rotation once per dial attempt, starting
        # from wherever the last successful dial left off.
        for offset in range(len(self.endpoints)):
            idx = (self._endpoint_idx + offset) % len(self.endpoints)
            address = self.endpoints[idx]
            try:
                sock = socket.create_connection(address,
                                                timeout=self.connect_timeout)
            except OSError as exc:
                host, port = address
                self._log(f"cannot reach coordinator {host}:{port}: {exc}")
                continue
            self._endpoint_idx = idx
            self.address = address
            break
        if sock is None:
            return "lost"
        sock.settimeout(None)
        try:
            send_frame(sock, {"op": "register",
                              "protocol": PROTOCOL_VERSION,
                              "name": self.name, "pid": os.getpid(),
                              "inflight": self._inflight_key()},
                       max_frame=self.max_frame)
            reply = recv_frame(sock, max_frame=self.max_frame)
        except (OSError, ProtocolError):
            sock.close()
            return "lost"
        if reply is None:
            sock.close()
            return "lost"
        if reply.get("op") == "error":
            print(f"error: coordinator rejected registration: "
                  f"{reply.get('message')}", flush=True)
            sock.close()
            return "fatal"
        if reply.get("op") != "registered":
            sock.close()
            return "lost"
        self.worker_id = reply.get("worker")
        self.lease_seconds = float(reply.get("lease_s") or 15.0)
        self._sock = sock
        self._registered_this_dial = True
        # Point the cache's remote tier at whichever endpoint won, so
        # fetch-on-miss follows a failover too.
        self.cache.retarget(self.address)
        host, port = self.address
        self._log(f"registered with {host}:{port} "
                  f"(lease {self.lease_seconds:.0f}s)")
        return None

    def _run_once(self) -> str:
        failure = self._connect_and_register()
        if failure is not None:
            return failure
        sock = self._sock
        heartbeat_every = max(0.2, self.lease_seconds / 3.0)
        next_beat = time.monotonic() + heartbeat_every
        try:
            while True:
                timeout = max(0.0, next_beat - time.monotonic())
                readable, _, _ = select.select([sock, self._wake_r], [], [],
                                               timeout)
                if self._wake_r in readable:
                    os.read(self._wake_r, 4096)
                    if not self._flush_finished_job():
                        return "lost"
                    if self._stopping:
                        return self._drain_and_goodbye()
                if sock in readable:
                    outcome = self._pump_frame()
                    if outcome is not None:
                        return outcome
                now = time.monotonic()
                if now >= next_beat:
                    next_beat = now + heartbeat_every
                    if not self._send({"op": "heartbeat",
                                       "worker": self.worker_id,
                                       "state": "busy" if self._current
                                       else "idle",
                                       "inflight": self._inflight_key()}):
                        return "lost"
        finally:
            self._close_socket()

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _send(self, payload: dict) -> bool:
        try:
            send_frame(self._sock, payload, max_frame=self.max_frame)
            return True
        except (OSError, ProtocolError):
            return False

    def _pump_frame(self) -> str | None:
        """Handle one coordinator frame; an outcome string ends the
        connection."""
        try:
            frame = recv_frame(self._sock, max_frame=self.max_frame)
        except (OSError, ProtocolError, ConnectionError):
            return "lost"
        if frame is None:
            return "lost"
        op = frame.get("op")
        if op == "job":
            self._start_job(frame)
        elif op == "lease":
            pass  # heartbeat acknowledged
        elif op == "shutdown":
            self._log("coordinator asked for shutdown")
            self._stopping = True
            return self._drain_and_goodbye()
        elif op == "goodbye":
            # The coordinator is leaving gracefully (signal).  With
            # --reconnect, treat it like a lost connection and re-dial
            # through the endpoint rotation (a standby may be taking
            # over); without, exit cleanly — this is not a crash.
            self._log(f"coordinator said goodbye "
                      f"({frame.get('reason') or 'no reason'})")
            if self.reconnect:
                return "lost"
            self._stopping = True
            return "done"
        elif op == "error":
            message = str(frame.get("message") or "")
            if "re-register" in message:
                if not self._send({"op": "register",
                                   "protocol": PROTOCOL_VERSION,
                                   "name": self.name, "pid": os.getpid(),
                                   "inflight": self._inflight_key()}):
                    return "lost"
            else:
                self._log(f"coordinator error: {message}")
        elif op == "registered":
            self.worker_id = frame.get("worker")
            self.lease_seconds = float(frame.get("lease_s") or
                                       self.lease_seconds)
        return None

    # -- jobs ----------------------------------------------------------------

    def _start_job(self, frame: dict) -> None:
        from ..campaign.runner import run_job
        from ..campaign.spec import Job

        key = str(frame.get("key"))
        job = frame.get("job") or {}
        hints = list(frame.get("hints") or ())
        cacheable = not key.startswith("uncached:")
        run = _JobRun(key, job, hints, cacheable)
        if cacheable:
            payload = self.cache.get(key)
            if payload is not None:
                self.cache_hits += 1
                self.completed += 1
                self._log(f"job {key[:12]}… answered from cache")
                self._send({"op": "result", "key": key, "result": payload,
                            "cache_hit": True, "worker": self.worker_id})
                return
        if self._current is not None:
            # The coordinator's book-keeping drifted (a dropped result
            # frame, a restart): hand the assignment *back* so it lands
            # on another worker, instead of dropping it on the floor.
            self._log(f"rejecting job {key[:12]}…: busy with "
                      f"{self._current.key[:12]}…")
            self._send({"op": "reject", "key": key,
                        "worker": self.worker_id})
            return
        self._current = run

        def grind() -> None:
            try:
                run.result = run_job(Job.from_dict(run.job), run.hints)
            except Exception:  # noqa: BLE001 - run_job already shields; belt
                from ..campaign.executors import _worker_death_result
                import traceback
                run.result = _worker_death_result(
                    Job.from_dict(run.job),
                    traceback.format_exc(limit=4))
            try:
                os.write(self._wake_w, b"j")
            except OSError:  # pragma: no cover - supervisor gone
                pass

        run.thread = threading.Thread(target=grind, daemon=True,
                                      name=f"fabric-job-{key[:12]}")
        run.thread.start()

    def _flush_finished_job(self) -> bool:
        """Send the result of a finished job thread, if any."""
        run = self._current
        if run is None or run.result is None:
            return True
        self._current = None
        run.thread.join()
        payload = run.result.to_dict()
        self.completed += 1
        self._log(f"job {run.key[:12]}… finished: {run.result.verdict}")
        if run.cacheable and run.result.verdict not in ("timeout", "error"):
            # Local store + cache_push replication to the coordinator.
            self.cache.put(run.key, payload)
        return self._send({"op": "result", "key": run.key, "result": payload,
                           "cache_hit": False, "worker": self.worker_id})

    def _drain_and_goodbye(self) -> str:
        """Finish the in-flight job, ship its result, leave cleanly."""
        run = self._current
        if run is not None and run.thread is not None:
            self._log("draining in-flight job before exit")
            run.thread.join()
            if not self._flush_finished_job():
                return "lost"
        self._send({"op": "goodbye", "worker": self.worker_id})
        self._log("goodbye")
        return "done"

    def close(self) -> None:
        self._close_socket()
        self.cache.close()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
