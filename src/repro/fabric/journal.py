"""Durable coordinator state: write-ahead journal + compacted snapshots.

The coordinator's queue is rebuilt across process death from two files
under ``--state-dir``:

* ``journal.wal`` — an append-only *write-ahead journal* of queue
  mutations.  Each record is one length-prefixed, CRC-32-checked JSON
  blob, flushed and ``fsync``'d before the mutation is acted on, so a
  mutation the coordinator acknowledged is a mutation the journal
  holds.  A torn or corrupt tail (the crash hit mid-write) is
  **truncated with a warning, never a crash** — everything before the
  tear replays.
* ``snapshot.json`` — a periodically-compacted snapshot of the replayed
  state.  Writing a snapshot truncates the journal, bounding both
  recovery time and disk use.

Recovery is ``replay(snapshot, records)`` — a *pure function* from a
snapshot dict plus a record sequence to a :class:`ReplayState`, so the
property tests can drive it with arbitrary prefixes (any prefix of a
valid journal is itself a valid journal: the crash may land anywhere).
Because jobs are keyed by their content address, replay is idempotent
by construction: a duplicate ``submit`` folds into the existing entry,
a ``result`` for a completed key is ignored, and a client re-submitting
after the crash is answered from the journalled result instead of
re-running the job.

Record vocabulary (the ``"t"`` discriminator):

=========== ================================================== =========
t           payload                                            meaning
=========== ================================================== =========
``submit``  ``{"key","job","hints","variant","cacheable",      job queued
            "wall"}``
``assign``  ``{"key","worker"}``                               attempt started
``requeue`` ``{"key","worker","worker_name"}``                 attempt failed
``result``  ``{"key","worker","payload"}``                     job completed
``expire``  ``{"key","verdict","payload"}``                    terminal fault
=========== ================================================== =========

``submit.wall`` is the wall-clock (``time.time()``) instant of the
*first* submit — the anchor the recovered coordinator measures
``deadline_s`` against, so a restart never resets a job's end-to-end
deadline clock.  ``requeue.worker_name`` feeds the entry's
``failed_on`` affinity set: names outlive coordinator restarts (worker
ids are reissued per incarnation), so a post-recovery retry still
avoids the workers that already failed the job.  Both fields are
optional — records from older writers replay fine without them.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field

__all__ = [
    "ReplayState",
    "replay",
    "read_journal",
    "append_record",
    "Journal",
]

#: Per-record header: payload byte length + CRC-32 of the payload.
_RECORD_HEADER = struct.Struct(">II")

#: Snapshot schema revision (bumped only on incompatible layout change).
SNAPSHOT_VERSION = 1


# -- the pure replay model ----------------------------------------------------


@dataclass
class ReplayState:
    """The coordinator state a snapshot + journal replays to.

    ``pending`` maps content keys to entry dicts (``job``/``hints``/
    ``variant``/``cacheable``/``attempts``/``failed_on``/``wall``);
    ``completed``
    maps keys to ``{"worker", "payload"}`` (payload None once compacted
    into a snapshot — the verdict then lives in the disk cache);
    ``expired`` holds keys that ended in a terminal ``TIMEOUT``/
    ``ERROR`` verdict.
    """

    pending: dict = field(default_factory=dict)
    completed: dict = field(default_factory=dict)
    expired: set = field(default_factory=set)
    jobs_submitted: int = 0
    jobs_completed: int = 0
    requeues: int = 0

    def to_snapshot(self) -> dict:
        """The compact JSON form (payloads dropped — see class doc)."""
        return {
            "version": SNAPSHOT_VERSION,
            "pending": {
                key: {k: v for k, v in entry.items()}
                for key, entry in self.pending.items()
            },
            "completed": {
                key: {"worker": record.get("worker")}
                for key, record in self.completed.items()
            },
            "expired": sorted(self.expired),
            "counters": {
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "requeues": self.requeues,
            },
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "ReplayState":
        counters = data.get("counters") or {}
        state = cls(
            pending={str(k): dict(v)
                     for k, v in (data.get("pending") or {}).items()},
            completed={str(k): dict(v)
                       for k, v in (data.get("completed") or {}).items()},
            expired=set(data.get("expired") or ()),
            jobs_submitted=int(counters.get("jobs_submitted") or 0),
            jobs_completed=int(counters.get("jobs_completed") or 0),
            requeues=int(counters.get("requeues") or 0),
        )
        return state


def _apply(state: ReplayState, record: dict) -> None:
    """Fold one journal record into ``state`` (idempotent, total)."""
    kind = record.get("t")
    key = record.get("key")
    if not isinstance(key, str):
        return  # malformed record: skip, never crash a recovery
    if kind == "submit":
        if key in state.pending or key in state.completed:
            return  # duplicate submit: the content key folds it in
        state.pending[key] = {
            "job": record.get("job") or {},
            "hints": list(record.get("hints") or ()),
            "variant": str(record.get("variant") or ""),
            "cacheable": bool(record.get("cacheable", True)),
            "deadline_s": record.get("deadline_s"),
            "max_attempts": record.get("max_attempts"),
            "wall": record.get("wall"),
            "attempts": 0,
            "failed_on": [],
        }
        state.jobs_submitted += 1
    elif kind == "assign":
        entry = state.pending.get(key)
        if entry is not None:
            entry["attempts"] = int(entry.get("attempts") or 0) + 1
    elif kind == "requeue":
        entry = state.pending.get(key)
        if entry is not None:
            state.requeues += 1
            # Prefer the durable name; fall back to the id for records
            # from older writers (an id can't match a post-restart
            # worker, so old-journal affinity degrades to a no-op).
            worker = record.get("worker_name")
            if worker is None:
                worker = record.get("worker")
            if worker is not None and worker not in entry["failed_on"]:
                entry["failed_on"].append(worker)
    elif kind == "result":
        if key in state.completed:
            return  # duplicate/late result: first one won
        state.pending.pop(key, None)
        state.expired.discard(key)
        state.completed[key] = {
            "worker": record.get("worker"),
            "payload": record.get("payload"),
        }
        state.jobs_completed += 1
    elif kind == "expire":
        state.pending.pop(key, None)
        state.expired.add(key)
    # Unknown kinds from a newer writer are skipped: replay is forward-
    # compatible by construction.


def replay(snapshot: dict | None, records) -> ReplayState:
    """Rebuild coordinator state from a snapshot plus journal records.

    Pure and total: any snapshot dict (or None) plus any prefix of a
    recorded journal yields a valid state — malformed records are
    skipped, duplicates fold in, and the pending/completed sets stay
    disjoint.
    """
    state = ReplayState.from_snapshot(snapshot) if snapshot else ReplayState()
    for record in records:
        if isinstance(record, dict):
            _apply(state, record)
    return state


# -- record framing -----------------------------------------------------------


def append_record(fh, record: dict, fsync: bool = True) -> int:
    """Append one framed record to an open binary file; bytes written.

    The frame is ``>II`` (length, CRC-32) + UTF-8 JSON.  The write is
    flushed and (by default) ``fsync``'d before returning — the WAL
    discipline: the record is durable before the caller acts on it.
    """
    blob = json.dumps(record, separators=(",", ":")).encode()
    fh.write(_RECORD_HEADER.pack(len(blob), zlib.crc32(blob)) + blob)
    fh.flush()
    if fsync:
        os.fsync(fh.fileno())
    return _RECORD_HEADER.size + len(blob)


def read_journal(source) -> tuple[list[dict], int, str | None]:
    """Read every intact record: ``(records, good_bytes, problem)``.

    ``source`` is a path or bytes.  Reading stops at the first torn or
    corrupt record — a short header, a short payload, a CRC mismatch or
    non-JSON bytes — and ``problem`` describes it (None for a clean
    file).  ``good_bytes`` is the offset the caller should truncate the
    file to before appending new records.
    """
    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
    else:
        try:
            data = pathlib.Path(source).read_bytes()
        except FileNotFoundError:
            return [], 0, None
    records: list[dict] = []
    offset = 0
    stream = io.BytesIO(data)
    while True:
        header = stream.read(_RECORD_HEADER.size)
        if not header:
            return records, offset, None
        if len(header) < _RECORD_HEADER.size:
            return records, offset, "torn record header"
        length, crc = _RECORD_HEADER.unpack(header)
        blob = stream.read(length)
        if len(blob) < length:
            return records, offset, f"torn record payload ({len(blob)}/{length} bytes)"
        if zlib.crc32(blob) != crc:
            return records, offset, "record CRC mismatch"
        try:
            record = json.loads(blob.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, offset, "record payload is not valid JSON"
        if not isinstance(record, dict):
            return records, offset, "record payload is not an object"
        records.append(record)
        offset += _RECORD_HEADER.size + length


# -- the state-dir manager ----------------------------------------------------


class Journal:
    """One ``--state-dir``: a snapshot file plus the live WAL.

    Args:
        state_dir: directory holding ``snapshot.json`` + ``journal.wal``
            (created if missing).
        snapshot_every: journal records between automatic compactions.
        fsync: disable only in tests — without it a crash may lose the
            tail the coordinator already acknowledged.
        log: warning sink (``print`` by default).
    """

    SNAPSHOT = "snapshot.json"
    WAL = "journal.wal"

    def __init__(self, state_dir, snapshot_every: int = 512,
                 fsync: bool = True, log=print):
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = max(1, int(snapshot_every))
        self.fsync = fsync
        self._log = log
        self.snapshot_path = self.state_dir / self.SNAPSHOT
        self.wal_path = self.state_dir / self.WAL
        self._fh = None
        self._records_since_snapshot = 0
        self.records_appended = 0
        self.snapshots_written = 0
        self.recovered_truncated: str | None = None

    # -- recovery ------------------------------------------------------------

    def _load_snapshot(self) -> dict | None:
        try:
            data = json.loads(self.snapshot_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            # A corrupt snapshot (torn replace on a weird filesystem) is
            # quarantined; the journal alone still replays.
            self._log(f"[journal] snapshot unreadable ({exc}); "
                      f"quarantined as {self.snapshot_path.name}.bad")
            try:
                self.snapshot_path.replace(
                    self.snapshot_path.with_name(
                        self.snapshot_path.name + ".bad"))
            except OSError:
                pass
            return None
        return data if isinstance(data, dict) else None

    def recover(self) -> ReplayState:
        """Replay snapshot + journal; truncate any torn tail; reopen.

        After this call the journal is open for appending and the
        returned state is exactly what the on-disk files prove.
        """
        snapshot = self._load_snapshot()
        records, good_bytes, problem = read_journal(self.wal_path)
        if problem is not None:
            self._log(f"[journal] {self.wal_path.name}: {problem} — "
                      f"truncating to last intact record "
                      f"({good_bytes} bytes, {len(records)} record(s))")
            self.recovered_truncated = problem
            with open(self.wal_path, "r+b") as fh:
                fh.truncate(good_bytes)
                if self.fsync:
                    os.fsync(fh.fileno())
        state = replay(snapshot, records)
        self._records_since_snapshot = len(records)
        self._open()
        return state

    # -- appending -----------------------------------------------------------

    def _open(self) -> None:
        if self._fh is None:
            self._fh = open(self.wal_path, "ab")

    def append(self, record: dict) -> None:
        """Durably append one mutation record (WAL discipline)."""
        self._open()
        append_record(self._fh, record, fsync=self.fsync)
        self.records_appended += 1
        self._records_since_snapshot += 1

    @property
    def due_for_snapshot(self) -> bool:
        return self._records_since_snapshot >= self.snapshot_every

    # -- compaction ----------------------------------------------------------

    def write_snapshot(self, state: ReplayState) -> None:
        """Atomically write a compacted snapshot and truncate the WAL.

        Order matters: the snapshot must be durable *before* the journal
        is truncated, or a crash between the two loses state.
        """
        tmp = self.snapshot_path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(state.to_snapshot(), fh)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        tmp.replace(self.snapshot_path)
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.wal_path, "wb")  # truncate
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._records_since_snapshot = 0
        self.snapshots_written += 1

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def status(self) -> dict:
        """JSON-ready journal counters for the ``status`` op."""
        return {
            "state_dir": str(self.state_dir),
            "records_appended": self.records_appended,
            "snapshots_written": self.snapshots_written,
            "records_since_snapshot": self._records_since_snapshot,
            "recovered_truncated": self.recovered_truncated,
        }
