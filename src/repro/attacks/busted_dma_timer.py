"""The DMA + timer attack of Fig. 1 (the original BUSted shape).

The four numbered events of the paper's figure:

1. (preparation) the attacker instructs the DMA to perform memory
   accesses and *afterwards* start the timer;
2. (recording) after the context switch, the DMA performs the accesses
   and then starts the timer;
3. victim memory accesses contend with the DMA and delay the timer
   start;
4. (retrieval) the attacker reads the timer state — a lower count means
   the start was delayed, i.e. the victim accessed memory more often.
"""

from __future__ import annotations

from ..soc import dma as dma_regs
from ..soc import timer as timer_regs
from ..soc.pulpissimo import Soc
from .phases import AttackHarness, AttackResult

__all__ = ["run_dma_timer_attack", "dma_timer_attack_sweep"]


def run_dma_timer_attack(
    soc: Soc,
    victim_accesses: int,
    victim_region: str = "pub_ram",
    recording_cycles: int = 64,
    transfer_words: int = 6,
    backend: str = "compile",
) -> AttackResult:
    """One run of the Fig. 1 attack; observation = final timer count."""
    if soc.timer is None:
        raise ValueError("this attack needs the timer IP (include_timer)")
    harness = AttackHarness(soc, backend=backend)
    bus = harness.bus
    pub = soc.word_addr("pub_ram")
    dma = soc.word_addr("dma")
    timer = soc.word_addr("timer")

    # -- preparation: program the DMA, arm the timer kick (event 1) -----------
    harness.phase("preparation")
    harness.note("configuring DMA transfer with timer-start kick")
    bus.write(timer + timer_regs.REG_CTRL, 0b10)  # clear, disabled
    bus.write(dma + dma_regs.REG_SRC, pub)
    bus.write(dma + dma_regs.REG_DST, pub + transfer_words)
    bus.write(dma + dma_regs.REG_LEN, transfer_words)
    bus.write(dma + dma_regs.REG_KICK_ADDR, timer + timer_regs.REG_CTRL)
    bus.write(dma + dma_regs.REG_KICK_DATA, 1)  # enable bit
    bus.write(dma + dma_regs.REG_CTRL, 1)
    harness.note("DMA started (event 1)")

    # -- recording: victim contends; timer start is delayed (events 2-3) -------
    harness.phase("recording")
    harness.context_switch()
    window_end = harness.sim.cycle + recording_cycles
    victim_base = soc.word_addr(victim_region)
    for i in range(victim_accesses):
        bus.read(victim_base + (i % 4))
        harness.note(f"victim access #{i + 1} (event 3)")
    harness.run_until(window_end)

    # -- retrieval: read the timer state (event 4) --------------------------------
    harness.phase("retrieval")
    harness.context_switch()
    count = bus.read(timer + timer_regs.REG_VALUE)
    harness.note(f"retrieved timer count: {count} (event 4)")
    return AttackResult(
        victim_accesses=victim_accesses,
        observation=count,
        timeline=harness.timeline,
    )


def dma_timer_attack_sweep(
    soc: Soc,
    max_accesses: int = 6,
    victim_region: str = "pub_ram",
    recording_cycles: int = 64,
    backend: str = "compile",
) -> list[AttackResult]:
    """Sweep victim activity: a decreasing timer count is the channel."""
    return [
        run_dma_timer_attack(
            soc,
            victim_accesses=n,
            victim_region=victim_region,
            recording_cycles=recording_cycles,
            backend=backend,
        )
        for n in range(max_accesses + 1)
    ]
