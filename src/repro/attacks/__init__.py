"""End-to-end attack demonstrations on the simulated SoC.

The empirical counterpart of the formal analysis: the three-phase
attacks of Sec. 2.2 scripted against the cycle-accurate simulator —
the Fig. 1 DMA+timer attack and the Sec. 4.1 HWPE+memory variant —
plus channel-capacity quantification of the resulting leaks.
"""

from .busted_dma_timer import dma_timer_attack_sweep, run_dma_timer_attack
from .busted_hwpe import hwpe_attack_sweep, run_hwpe_attack
from .channel import ChannelReport, analyze_channel
from .phases import AttackHarness, AttackResult, TimelineEvent

__all__ = [
    "dma_timer_attack_sweep",
    "run_dma_timer_attack",
    "hwpe_attack_sweep",
    "run_hwpe_attack",
    "ChannelReport",
    "analyze_channel",
    "AttackHarness",
    "AttackResult",
    "TimelineEvent",
]
