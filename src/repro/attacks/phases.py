"""Three-phase attack orchestration (Sec. 2.2 of the paper).

Timing side-channel attacks on MCUs divide into *preparation* (attacker
configures spying IPs), *recording* (victim executes while the IPs
collect information into system state) and *retrieval* (attacker reads
the information back), separated by context switches.

:class:`AttackHarness` scripts these phases against a simulated SoC
whose CPU port is driven directly — the attacker and victim tasks share
the port in time-multiplexed fashion, exactly the single-core threat
model of Sec. 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.simulator import Simulator
from ..sim.testbench import BusDriver
from ..soc.pulpissimo import Soc

__all__ = ["TimelineEvent", "AttackResult", "AttackHarness"]


@dataclass
class TimelineEvent:
    """One annotated moment of an attack run (for Fig. 1-style renders)."""

    cycle: int
    phase: str
    description: str


@dataclass
class AttackResult:
    """Outcome of one attack run.

    Attributes:
        victim_accesses: ground truth — protected accesses the victim made.
        observation: what the attacker retrieved (progress count, timer
            value, ...); the side channel exists iff this varies with
            ``victim_accesses``.
        timeline: annotated events of the run.
    """

    victim_accesses: int
    observation: int
    timeline: list[TimelineEvent] = field(default_factory=list)


class AttackHarness:
    """Simulate a three-phase attack on a CPU-cut SoC build."""

    def __init__(self, soc: Soc, backend: str = "compile"):
        if soc.config.include_cpu:
            raise ValueError(
                "AttackHarness drives the cut CPU port; build the SoC "
                "with include_cpu=False"
            )
        self.soc = soc
        self.sim = Simulator(soc.circuit, backend=backend)
        self.bus = BusDriver(self.sim)
        self.timeline: list[TimelineEvent] = []
        self._phase = "idle"

    # -- bookkeeping -------------------------------------------------------

    def phase(self, name: str) -> None:
        """Enter a phase (records a context switch on the timeline)."""
        if name != self._phase:
            self.note(f"context switch -> {name}")
            self._phase = name

    def note(self, description: str) -> None:
        """Record an annotated event at the current cycle."""
        self.timeline.append(
            TimelineEvent(self.sim.cycle, self._phase, description)
        )

    def context_switch(self, cycles: int = 4) -> None:
        """Idle cycles standing in for the OS context-switch code."""
        self.bus.idle(cycles)

    # -- convenience -------------------------------------------------------------

    def run_until(self, cycle: int) -> None:
        """Idle the port until an absolute simulation cycle (fixed windows)."""
        while self.sim.cycle < cycle:
            self.bus.idle(1)

    def format_timeline(self) -> str:
        """Render the recorded events as an aligned table."""
        lines = [f"{'cycle':>6}  {'phase':<12} event"]
        lines.append("-" * 48)
        for event in self.timeline:
            lines.append(
                f"{event.cycle:>6}  {event.phase:<12} {event.description}"
            )
        return "\n".join(lines)
