"""Leakage quantification for attack sweeps.

Turns a sweep of :class:`~repro.attacks.phases.AttackResult` into
channel metrics: how many victim-activity levels the attacker can
distinguish from the observation, whether the relation is monotonic
(a usable ruler), and the resulting channel capacity bound in bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .phases import AttackResult

__all__ = ["ChannelReport", "analyze_channel"]


@dataclass
class ChannelReport:
    """Summary of one attack sweep.

    Attributes:
        observations: victim-access count -> attacker observation.
        distinguishable_classes: number of distinct observations.
        leaked_bits: log2 of the class count — an upper bound on the
            information per attack window.
        monotonic: whether the observation is monotonically non-increasing
            or non-decreasing in the victim activity (a calibratable ruler).
        leaks: True when more than one class is distinguishable.
    """

    observations: dict[int, int]
    distinguishable_classes: int
    leaked_bits: float
    monotonic: bool

    @property
    def leaks(self) -> bool:
        return self.distinguishable_classes > 1

    def format_table(self) -> str:
        """Render the sweep as a two-column table plus the verdict."""
        lines = [f"{'victim accesses':>16} {'observation':>12}"]
        lines.append("-" * 30)
        for n in sorted(self.observations):
            lines.append(f"{n:>16} {self.observations[n]:>12}")
        lines.append("-" * 30)
        lines.append(
            f"distinguishable classes: {self.distinguishable_classes} "
            f"(~{self.leaked_bits:.2f} bits/window), "
            f"{'monotonic' if self.monotonic else 'non-monotonic'}, "
            f"channel {'OPEN' if self.leaks else 'closed'}"
        )
        return "\n".join(lines)


def analyze_channel(results: list[AttackResult]) -> ChannelReport:
    """Compute channel metrics from a sweep (one result per activity level)."""
    import math

    observations = {r.victim_accesses: r.observation for r in results}
    values = [observations[n] for n in sorted(observations)]
    classes = len(set(values))
    non_increasing = all(a >= b for a, b in zip(values, values[1:]))
    non_decreasing = all(a <= b for a, b in zip(values, values[1:]))
    return ChannelReport(
        observations=observations,
        distinguishable_classes=classes,
        leaked_bits=math.log2(classes) if classes else 0.0,
        monotonic=non_increasing or non_decreasing,
    )
