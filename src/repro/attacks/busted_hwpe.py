"""The new BUSted variant: HWPE accelerator + memory device (Sec. 4.1).

The attack UPEC-SSC discovered, demonstrated end-to-end in simulation:

* **preparation** — the attacker primes a writable memory region with
  zeros and programs the HWPE to progressively overwrite it with
  non-zero values;
* **recording** — the victim runs; each of its accesses to the shared
  memory device contends with the HWPE's streaming transactions and
  delays them;
* **retrieval** — the attacker counts how far the primed region was
  overwritten; fewer overwritten words = more victim memory accesses.

The key property (benchmark E5): **no timer IP is involved** — the
"progress ruler" is the memory region itself, so timer-denial
countermeasures do not stop it.
"""

from __future__ import annotations

from ..soc import hwpe as hwpe_regs
from ..soc.pulpissimo import Soc
from .phases import AttackHarness, AttackResult

__all__ = ["run_hwpe_attack", "hwpe_attack_sweep"]


def run_hwpe_attack(
    soc: Soc,
    victim_accesses: int,
    victim_region: str = "pub_ram",
    recording_cycles: int = 48,
    spy_words: int | None = None,
    victim_writes: bool = True,
    backend: str = "compile",
) -> AttackResult:
    """One run of the HWPE+memory attack.

    Args:
        soc: a CPU-cut SoC build (vulnerable or secured).
        victim_accesses: how many accesses the victim performs in its
            (protected) region during the fixed recording window.
        victim_region: ``"pub_ram"`` for the vulnerable scenario or
            ``"priv_ram"`` for the countermeasure scenario.
        recording_cycles: fixed length of the recording window.
        spy_words: length of the primed region (defaults to half the
            public memory).
        victim_writes: victim performs stores (back-to-back bus cycles,
            maximum contention) instead of loads.
        backend: simulator backend.

    Returns:
        The ground truth and the attacker's observation (overwritten
        words in the primed region).
    """
    harness = AttackHarness(soc, backend=backend)
    bus = harness.bus
    pub = soc.word_addr("pub_ram")
    hwpe = soc.word_addr("hwpe")
    if spy_words is None:
        spy_words = soc.config.pub_mem_words // 2
    src = pub
    primed = pub + soc.config.pub_mem_words // 2

    # -- preparation (attacker task) ----------------------------------------
    harness.phase("preparation")
    harness.note("priming attacker region with zeros")
    for i in range(spy_words):
        bus.write(primed + i, 0)
    harness.note("configuring HWPE to overwrite the primed region")
    bus.write(hwpe + hwpe_regs.REG_SRC, src)
    bus.write(hwpe + hwpe_regs.REG_DST, primed)
    bus.write(hwpe + hwpe_regs.REG_LEN, spy_words)
    bus.write(hwpe + hwpe_regs.REG_COEF, 0xA5)
    bus.write(hwpe + hwpe_regs.REG_CTRL, 1 | (hwpe_regs.OP_XOR << 1))
    harness.note("HWPE started")

    # -- recording (victim task) ----------------------------------------------
    harness.phase("recording")
    harness.context_switch()
    window_end = harness.sim.cycle + recording_cycles
    victim_base = soc.word_addr(victim_region)
    for i in range(victim_accesses):
        if victim_writes:
            bus.write(victim_base + (i % 4), i & 0xFF)
        else:
            bus.read(victim_base + (i % 4))
        harness.note(f"victim access #{i + 1}")
    harness.run_until(window_end)

    # -- retrieval (attacker task) ------------------------------------------------
    harness.phase("retrieval")
    harness.context_switch()
    # Freeze the ruler: abort the engine, then scan the primed region.
    bus.write(hwpe + hwpe_regs.REG_CTRL, 0)
    harness.note("HWPE stopped")
    overwritten = 0
    for i in range(spy_words):
        if bus.read(primed + i) != 0:
            overwritten += 1
    harness.note(f"retrieved progress: {overwritten}/{spy_words} words")
    return AttackResult(
        victim_accesses=victim_accesses,
        observation=overwritten,
        timeline=harness.timeline,
    )


def hwpe_attack_sweep(
    soc: Soc,
    max_accesses: int = 10,
    victim_region: str = "pub_ram",
    recording_cycles: int = 28,
    victim_writes: bool = True,
    backend: str = "compile",
) -> list[AttackResult]:
    """Sweep the victim access count; the channel shows as a monotonic
    decrease of the observation (vulnerable SoC) or a constant
    (secured scenario)."""
    return [
        run_hwpe_attack(
            soc,
            victim_accesses=n,
            victim_region=victim_region,
            recording_cycles=recording_cycles,
            victim_writes=victim_writes,
            backend=backend,
        )
        for n in range(max_accesses + 1)
    ]
