"""The Pulpissimo-style SoC top level.

Assembles the case-study system of Sec. 4: a RISC-V core (simulation
builds) or the cut victim interface (formal builds), a DMA, an
HWPE-style accelerator, timer/UART/GPIO/SPI peripherals, and two memory
devices (public and private) behind a crossbar with independent
per-slave arbitration.

``build_soc(FORMAL_TINY)`` returns the vulnerable design of Sec. 4.1;
``build_soc(FORMAL_TINY.replace(secure=True))`` applies the
countermeasure of Sec. 4.2 (victim region confined to the private
memory, firmware constraints keeping the DMA and HWPE out of it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.circuit import Circuit
from ..rtl.expr import Const, Expr, implies
from ..upec.threat_model import ThreatModel, VictimPort
from .address_map import AddressMap, build_address_map
from .config import SocConfig
from .countermeasures import (
    blocked_initiators,
    const_latency_regions,
    effective_arbitration,
    pad_response,
)
from .crossbar import Crossbar
from .cpu.core import SimpleRv32Core
from .dma import Dma
from .gpio import Gpio
from .hwpe import Hwpe
from .obi import ObiRequest, ObiResponse
from .spi import Spi
from .sram import Sram
from .timer import Timer
from .uart import Uart

__all__ = ["Soc", "build_soc"]

#: Input names of the cut CPU data port (formal builds).
VICTIM_VALID = "cpu_req_valid"
VICTIM_ADDR = "cpu_req_addr"
VICTIM_WE = "cpu_req_we"
VICTIM_WDATA = "cpu_req_wdata"
VICTIM_PAGE = "victim_page"


@dataclass
class Soc:
    """A built SoC: netlist, address map, IP handles, threat model."""

    circuit: Circuit
    config: SocConfig
    address_map: AddressMap
    threat_model: ThreatModel | None = None
    cpu: SimpleRv32Core | None = None
    dma: Dma | None = None
    hwpe: Hwpe | None = None
    timer: Timer | None = None
    uart: Uart | None = None
    gpio: Gpio | None = None
    spi: Spi | None = None

    def word_addr(self, region: str, offset: int = 0) -> int:
        """Bus word address of ``region[offset]``."""
        return self.address_map.base(region) + offset

    def byte_addr(self, region: str, offset: int = 0) -> int:
        """CPU byte address of ``region[offset]`` (simulation firmware)."""
        return self.word_addr(region, offset) * 4


def build_soc(cfg: SocConfig) -> Soc:
    """Build the SoC for a configuration; validates the netlist."""
    circuit = Circuit("pulpissimo")
    soc_scope = circuit.scope("soc")
    amap = build_address_map(cfg)
    soc = Soc(circuit=circuit, config=cfg, address_map=amap)

    # -- masters -----------------------------------------------------------
    masters: list[ObiRequest] = []
    if cfg.include_cpu:
        soc.cpu = SimpleRv32Core(
            soc_scope, "cpu", cfg.rom_words, cfg.addr_width
        )
        masters.append(soc.cpu.request)
    else:
        # Obs. 1: the CPU is cut; its data port becomes free inputs that
        # the Victim_Task_Executing() macro will constrain.
        masters.append(
            ObiRequest(
                valid=circuit.add_input(VICTIM_VALID, 1),
                addr=circuit.add_input(VICTIM_ADDR, cfg.addr_width),
                we=circuit.add_input(VICTIM_WE, 1),
                wdata=circuit.add_input(VICTIM_WDATA, cfg.data_width),
            )
        )
        circuit.add_input(VICTIM_PAGE, cfg.page_index_width)
    blocked = blocked_initiators(cfg)

    def initiator_request(ip, name: str) -> ObiRequest:
        # block_initiator: the paper's DMA-stop / interface blackboxing,
        # generalized — the engine keeps its registers (the attacker can
        # still program it) but its request-valid is structurally tied
        # off, so it can never issue fabric traffic.
        req = ip.request
        if name not in blocked:
            return req
        return ObiRequest(valid=Const(0, 1), addr=req.addr,
                          we=req.we, wdata=req.wdata)

    if cfg.include_dma:
        soc.dma = Dma(soc_scope, "dma", cfg.addr_width, cfg.data_width,
                      cfg.dma_counter_bits)
        masters.append(initiator_request(soc.dma, "dma"))
    if cfg.include_hwpe:
        soc.hwpe = Hwpe(soc_scope, "hwpe", cfg.addr_width, cfg.data_width,
                        cfg.hwpe_counter_bits)
        masters.append(initiator_request(soc.hwpe, "hwpe"))
    missing = blocked - {"dma" if cfg.include_dma else None,
                         "hwpe" if cfg.include_hwpe else None}
    if missing:
        raise ValueError(
            f"countermeasure blocks absent initiator(s): "
            f"{', '.join(sorted(missing))}"
        )

    # -- crossbar ------------------------------------------------------------
    xbar = Crossbar(soc_scope.child("xbar"), masters, amap.regions,
                    effective_arbitration(cfg))

    # -- slaves ----------------------------------------------------------------
    behavioural = cfg.include_cpu
    # Region latencies come from the address map so a constant-latency
    # shim (countermeasure) and the crossbar's response routing always
    # agree on the cycle the data returns.  Under TDM the crossbar owns
    # the whole memory response pipeline (per master, so nothing in the
    # read path is shared between masters) and the devices answer
    # combinationally.
    tdm = xbar.tdm
    pub = Sram(
        soc_scope, "pub_ram", cfg.pub_mem_words, cfg.data_width,
        base=amap.base("pub_ram"), behavioural=behavioural,
        accessible=True,
        pipeline_stages=0 if tdm else amap.region("pub_ram").latency,
    )
    priv = Sram(
        soc_scope, "priv_ram", cfg.priv_mem_words, cfg.data_width,
        base=amap.base("priv_ram"), behavioural=behavioural,
        accessible=True,
        pipeline_stages=0 if tdm else amap.region("priv_ram").latency,
    )
    responses: list[ObiResponse | None] = [None] * len(amap.regions)
    responses[amap.index_of("pub_ram")] = pub.connect(
        xbar.slave_requests[amap.index_of("pub_ram")]
    )
    responses[amap.index_of("priv_ram")] = priv.connect(
        xbar.slave_requests[amap.index_of("priv_ram")]
    )
    if cfg.include_dma:
        responses[amap.index_of("dma")] = soc.dma.slave_response
    if cfg.include_hwpe:
        responses[amap.index_of("hwpe")] = soc.hwpe.slave_response
    if cfg.include_timer:
        soc.timer = Timer(soc_scope, "timer", cfg.data_width)
        responses[amap.index_of("timer")] = soc.timer.slave_response
    if cfg.include_uart:
        soc.uart = Uart(soc_scope, "uart", cfg.data_width)
        responses[amap.index_of("uart")] = soc.uart.slave_response
    if cfg.include_gpio:
        soc.gpio = Gpio(soc_scope, "gpio", cfg.data_width)
        responses[amap.index_of("gpio")] = soc.gpio.slave_response
    if cfg.include_spi:
        soc.spi = Spi(soc_scope, "spi", cfg.data_width)
        responses[amap.index_of("spi")] = soc.spi.slave_response

    # Constant-latency shims on non-memory regions: pad the device's
    # 1-cycle registered response up to the region's declared latency
    # (the memories already build their pipeline from the same number).
    for name in sorted(const_latency_regions(cfg)):
        if name in ("pub_ram", "priv_ram"):
            continue
        idx = amap.index_of(name)
        extra = amap.regions[idx].latency - 1
        if responses[idx] is not None and extra > 0:
            responses[idx] = pad_response(
                soc_scope.child(f"{name}_shim"), name, responses[idx], extra
            )

    # -- response routing and master/slave next-state closure --------------------
    combinational = {amap.index_of("pub_ram"), amap.index_of("priv_ram")} \
        if tdm else set()
    master_responses = xbar.connect_slaves(responses, combinational)
    # Probe nets: the CPU-side bus handshake (testbenches and traces).
    circuit.add_net("soc.cpu_gnt", master_responses[0].gnt)
    circuit.add_net("soc.cpu_rvalid", master_responses[0].rvalid)
    circuit.add_net("soc.cpu_rdata", master_responses[0].rdata)
    master_index = 0
    if cfg.include_cpu:
        soc.cpu.connect(master_responses[0])
    master_index += 1
    if cfg.include_dma:
        soc.dma.connect(
            master_responses[master_index],
            xbar.slave_requests[amap.index_of("dma")],
        )
        master_index += 1
    if cfg.include_hwpe:
        soc.hwpe.connect(
            master_responses[master_index],
            xbar.slave_requests[amap.index_of("hwpe")],
        )
        master_index += 1
    if cfg.include_timer:
        soc.timer.connect(xbar.slave_requests[amap.index_of("timer")])
    if cfg.include_uart:
        soc.uart.connect(xbar.slave_requests[amap.index_of("uart")])
    if cfg.include_gpio:
        soc.gpio.connect(xbar.slave_requests[amap.index_of("gpio")])
    if cfg.include_spi:
        soc.spi.connect(xbar.slave_requests[amap.index_of("spi")])

    circuit.validate()

    # -- threat model (formal builds) ---------------------------------------------
    if not cfg.include_cpu:
        soc.threat_model = _build_threat_model(soc)
    return soc


def _build_threat_model(soc: Soc) -> ThreatModel:
    cfg = soc.config
    circuit = soc.circuit
    amap = soc.address_map
    secret_arrays = {
        "soc.pub_ram.mem": amap.base("pub_ram"),
        "soc.priv_ram.mem": amap.base("priv_ram"),
    }
    spy_ports = []
    if cfg.include_dma:
        spy_ports.append(("soc.dma.req_valid", "soc.dma.req_addr"))
    if cfg.include_hwpe:
        spy_ports.append(("soc.hwpe.req_valid", "soc.hwpe.req_addr"))
    tm = ThreatModel(
        circuit=circuit,
        victim_port=VictimPort(
            valid=VICTIM_VALID, addr=VICTIM_ADDR,
            write=VICTIM_WE, wdata=VICTIM_WDATA,
        ),
        victim_page=VICTIM_PAGE,
        page_bits=cfg.page_bits,
        secret_arrays=secret_arrays,
        spy_master_ports=spy_ports,
    )
    # Per Sec. 3.4 the victim memory space is "determined by address
    # ranges in the memory devices of the SoCs": the symbolic page ranges
    # over the two memories (any page of either device), not over
    # peripheral register blocks.
    page_input = tm.page_input
    in_memory_device = None
    for region_name in ("pub_ram", "priv_ram"):
        pages = amap.pages_of(region_name, cfg.page_bits)
        term = page_input.uge(pages.start) & page_input.ult(pages.stop)
        in_memory_device = term if in_memory_device is None \
            else in_memory_device | term
    tm.victim_page_constraint = in_memory_device
    if cfg.secure:
        _apply_countermeasure(soc, tm)
    if blocked_initiators(cfg):
        from .invariants import blocked_initiator_invariants

        # Provable with no assumptions (the blocked engine's grant is
        # structurally false); excludes phantom in-flight responses the
        # symbolic start state could otherwise claim for it.
        tm.invariants.extend(blocked_initiator_invariants(soc))
    return tm


def _apply_countermeasure(soc: Soc, tm: ThreatModel) -> None:
    """The Sec. 4.2 fix: security-critical region in the private memory,
    access to that device denied to the DMA and HWPE by firmware
    constraints (the "set of legal configurations for the corresponding
    IPs").
    """
    from .firmware import private_region_constraints, victim_page_in_private
    from .invariants import spy_response_invariants

    tm.victim_page_constraint = victim_page_in_private(soc, tm)
    tm.firmware_constraints.extend(private_region_constraints(soc))
    # Reachability invariants excluding the false counterexamples of
    # Sec. 3.4; proven by verify_soc_invariants() (see tests/E10 ablation).
    tm.invariants.extend(spy_response_invariants(soc))
