"""GPIO peripheral.

Register map (word offsets): 0 = OUT, 1 = IN (external pins, read-only),
2 = DIR.  The external pin inputs are true primary inputs of the SoC and
therefore constrained equal between the two UPEC instances
(``Primary_Input_Constraints()``).
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import mux
from .obi import ObiRequest, ObiResponse
from ..rtl.expr import Const

__all__ = ["Gpio"]

REG_OUT, REG_IN, REG_DIR = range(3)


class Gpio:
    """A bank of ``data_width`` general-purpose pins."""

    def __init__(self, scope: Scope, name: str, data_width: int):
        self.scope = scope.child(name)
        self.data_width = data_width
        s = self.scope
        self.out = s.reg("out", data_width, kind="ip")
        self.direction = s.reg("dir", data_width, kind="ip")
        self.pins_in = s.input("pins_in", data_width)
        # Pin view: driven bits read back the output register.
        self.pins = s.net(
            "pins", (self.out & self.direction) | (self.pins_in & ~self.direction)
        )
        self._rvalid = s.reg("rvalid_q", 1, kind="interconnect")
        self._rdata = s.reg("rdata_q", data_width, kind="interconnect")
        self.slave_response = ObiResponse(
            gnt=Const(1, 1), rvalid=self._rvalid, rdata=self._rdata
        )

    def connect(self, cfg: ObiRequest) -> None:
        """Attach the register port; drives all GPIO state."""
        s = self.scope
        c = s.circuit
        cfg_write = cfg.valid & cfg.we
        offset = cfg.addr[1:0]
        c.set_next(
            self.out, mux(cfg_write & offset.eq(REG_OUT), cfg.wdata, self.out)
        )
        c.set_next(
            self.direction,
            mux(cfg_write & offset.eq(REG_DIR), cfg.wdata, self.direction),
        )
        read_mux = self.out
        read_mux = mux(offset.eq(REG_IN), self.pins, read_mux)
        read_mux = mux(offset.eq(REG_DIR), self.direction, read_mux)
        c.set_next(self._rvalid, cfg.valid & ~cfg.we)
        c.set_next(self._rdata, mux(cfg.valid & ~cfg.we, read_mux, self._rdata))
