"""Parameterized countermeasure transforms at the SoC/RTL layer.

The paper closes by proposing a "UPEC-SCC driven design methodology
leading to new and less conservative countermeasures" (Sec. 4.2).  This
module is the *application* side of that methodology: a small registry
of structural transforms a :class:`~repro.soc.config.SocConfig` can
carry in its ``countermeasures`` field, applied during
:func:`~repro.soc.pulpissimo.build_soc` so a patched design is a
first-class configuration — with its own
:meth:`~repro.soc.config.SocConfig.variant_id`, hence its own verdict
cache address and campaign grid cell.

Spec grammar (one string per countermeasure)::

    block_initiator:<ip>        # dma | hwpe — the paper's DMA-stop /
                                # interface blackboxing, generalized to
                                # any non-CPU initiator: the engine's
                                # request-valid is structurally tied off,
                                # so it can never contend on the fabric.
    tdm_arbitration             # fixed-slot (TDM) crossbar arbitration
                                # replacing rr/fixed priority: each
                                # master owns a time slot, so one
                                # master's grant never depends on another
                                # master's (possibly victim-modulated)
                                # request stream.
    const_latency:<region>      # constant-latency read shim: pad the
                                # region's response path to the slowest
                                # device's latency, removing device-
                                # latency modulation of master progress.

The selection side — which transform to try first against a diagnosed
leak — lives in :mod:`repro.repair.countermeasures`; this module only
knows how to *parse* and *apply*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.circuit import Scope
from ..rtl.expr import mux
from .obi import ObiResponse

__all__ = [
    "COUNTERMEASURE_NAMES",
    "Countermeasure",
    "parse_countermeasure",
    "normalize_countermeasures",
    "blocked_initiators",
    "effective_arbitration",
    "const_latency_regions",
    "pad_response",
]

#: Initiators :data:`block_initiator` may name (non-CPU bus masters).
BLOCKABLE_INITIATORS = ("dma", "hwpe")

#: Transform names the registry knows (the parameter grammar of each is
#: validated by :func:`parse_countermeasure`).
COUNTERMEASURE_NAMES = ("block_initiator", "tdm_arbitration", "const_latency")


@dataclass(frozen=True)
class Countermeasure:
    """One parsed countermeasure: transform name plus its parameter."""

    name: str
    param: str | None = None

    @property
    def spec(self) -> str:
        """The canonical spec string (parse → spec round-trips)."""
        return self.name if self.param is None else f"{self.name}:{self.param}"


def parse_countermeasure(spec: str) -> Countermeasure:
    """Parse and validate one countermeasure spec string."""
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"countermeasure spec must be a non-empty string, "
                         f"got {spec!r}")
    name, sep, param = spec.partition(":")
    param = param if sep else None
    if name == "block_initiator":
        if param not in BLOCKABLE_INITIATORS:
            raise ValueError(
                f"block_initiator needs an initiator parameter "
                f"({', '.join(BLOCKABLE_INITIATORS)}); got {spec!r}"
            )
    elif name == "tdm_arbitration":
        if param is not None:
            raise ValueError(f"tdm_arbitration takes no parameter; got {spec!r}")
    elif name == "const_latency":
        if not param:
            raise ValueError(
                f"const_latency needs a slave region parameter; got {spec!r}"
            )
    else:
        raise ValueError(
            f"unknown countermeasure {name!r}; known: "
            f"{', '.join(COUNTERMEASURE_NAMES)}"
        )
    return Countermeasure(name=name, param=param)


def normalize_countermeasures(specs) -> tuple[str, ...]:
    """Validate and canonicalize a countermeasure collection.

    Sorted and deduplicated, so two configurations carrying the same set
    of patches — in any order, however spelled — share one
    ``variant_id()`` and hence one verdict-cache address.
    """
    if isinstance(specs, str):
        raise TypeError(
            "countermeasures must be a sequence of spec strings, not a "
            "bare string"
        )
    return tuple(sorted({parse_countermeasure(s).spec for s in specs}))


# -- application hooks (consumed by build_soc and the address map) -----------


def _parsed(cfg) -> list[Countermeasure]:
    return [parse_countermeasure(s) for s in cfg.countermeasures]


def blocked_initiators(cfg) -> set[str]:
    """Initiators whose request interface is tied off by a countermeasure."""
    return {cm.param for cm in _parsed(cfg) if cm.name == "block_initiator"}


def effective_arbitration(cfg) -> str:
    """The arbitration policy after countermeasures (``tdm`` overrides)."""
    if any(cm.name == "tdm_arbitration" for cm in _parsed(cfg)):
        return "tdm"
    return cfg.arbitration


def const_latency_regions(cfg) -> set[str]:
    """Region names whose response path gets the constant-latency shim."""
    return {cm.param for cm in _parsed(cfg) if cm.name == "const_latency"}


def pad_response(scope: Scope, name: str, resp: ObiResponse,
                 extra: int) -> ObiResponse:
    """Delay a slave response by ``extra`` register stages.

    The shim stages are transient interconnect buffers (overwritten by
    every transaction, outside ``S_pers`` per Sec. 3.4), mirroring the
    private memory's guarded-RAM pipeline in :mod:`repro.soc.sram`.
    """
    circuit = scope.circuit
    rvalid, rdata = resp.rvalid, resp.rdata
    for stage in range(extra):
        valid_q = scope.reg(f"{name}_clat_v{stage}", 1, kind="interconnect")
        data_q = scope.reg(f"{name}_clat_d{stage}", rdata.width,
                           kind="interconnect", persistent=False)
        circuit.set_next(valid_q, rvalid)
        circuit.set_next(data_q, mux(rvalid, rdata, data_q))
        rvalid, rdata = valid_q, data_q
    return ObiResponse(gnt=resp.gnt, rvalid=rvalid, rdata=rdata)
