"""UART transmitter (I/O peripheral).

One of the "plethora of complex IPs" an MCU SoC ships; included so the
state-variable population and the S_pers classification exercise more
than the attack-relevant IPs.  Transmit-only with a programmable baud
divider: 8N1 framing on the ``tx`` net.

Register map (word offsets): 0 = DATA (write starts transmission),
1 = STATUS (bit0 busy), 2 = BAUDDIV.
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import Const, mux, zext
from .obi import ObiRequest, ObiResponse

__all__ = ["Uart"]

REG_DATA, REG_STATUS, REG_BAUDDIV = range(3)

_IDLE, _START, _DATA, _STOP = 0, 1, 2, 3


class Uart:
    """8N1 UART transmitter with a 16-bit baud divider."""

    def __init__(self, scope: Scope, name: str, data_width: int):
        self.scope = scope.child(name)
        self.data_width = data_width
        s = self.scope
        self.state = s.reg("state", 2, kind="ip")
        self.shift = s.reg("shift", 8, kind="ip")
        self.bit_index = s.reg("bit_index", 3, kind="ip")
        self.baud_div = s.reg("baud_div", 16, kind="ip", reset=4)
        self.baud_cnt = s.reg("baud_cnt", 16, kind="ip")
        self.tx = s.net(
            "tx",
            mux(self.state.eq(_DATA), self.shift[0],
                mux(self.state.eq(_START), Const(0, 1), Const(1, 1))),
        )
        self._rvalid = s.reg("rvalid_q", 1, kind="interconnect")
        self._rdata = s.reg("rdata_q", data_width, kind="interconnect")
        self.slave_response = ObiResponse(
            gnt=Const(1, 1), rvalid=self._rvalid, rdata=self._rdata
        )

    def connect(self, cfg: ObiRequest) -> None:
        """Attach the register port; drives all UART state."""
        s = self.scope
        c = s.circuit
        cfg_write = cfg.valid & cfg.we
        offset = cfg.addr[1:0]
        idle = self.state.eq(_IDLE)
        busy = ~idle

        start = cfg_write & offset.eq(REG_DATA) & idle
        tick = self.baud_cnt.eq(self.baud_div)

        next_state = self.state
        next_state = mux(start, Const(_START, 2), next_state)
        next_state = mux(self.state.eq(_START) & tick, Const(_DATA, 2), next_state)
        last_bit = self.bit_index.eq(7)
        next_state = mux(
            self.state.eq(_DATA) & tick & last_bit, Const(_STOP, 2), next_state
        )
        next_state = mux(self.state.eq(_STOP) & tick, Const(_IDLE, 2), next_state)
        c.set_next(self.state, next_state)

        next_shift = mux(start, cfg.wdata[7:0], self.shift)
        next_shift = mux(self.state.eq(_DATA) & tick, self.shift >> 1, next_shift)
        c.set_next(self.shift, next_shift)

        next_bits = mux(self.state.eq(_DATA) & tick, self.bit_index + 1,
                        self.bit_index)
        next_bits = mux(start, Const(0, 3), next_bits)
        c.set_next(self.bit_index, next_bits)

        div_hit = cfg_write & offset.eq(REG_BAUDDIV)
        wide = zext(cfg.wdata, 16) if cfg.wdata.width < 16 else cfg.wdata[15:0]
        c.set_next(self.baud_div, mux(div_hit, wide, self.baud_div))
        c.set_next(
            self.baud_cnt,
            mux(tick | idle, Const(0, 16), self.baud_cnt + 1),
        )

        read_mux = zext(self.shift, self.data_width) \
            if self.data_width > 8 else self.shift[self.data_width - 1 : 0]
        read_mux = mux(offset.eq(REG_STATUS), zext(busy, self.data_width),
                       read_mux)
        div_read = zext(self.baud_div, self.data_width) \
            if self.data_width > 16 else self.baud_div[self.data_width - 1 : 0]
        read_mux = mux(offset.eq(REG_BAUDDIV), div_read, read_mux)
        c.set_next(self._rvalid, cfg.valid & ~cfg.we)
        c.set_next(self._rdata, mux(cfg.valid & ~cfg.we, read_mux, self._rdata))
