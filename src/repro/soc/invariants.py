"""Reachability invariants for the SoC (Sec. 3.4 of the paper).

IPC's symbolic starting state includes unreachable states, which produce
*false counterexamples*.  The one that actually arises on the secured
SoC is historical: the crossbar's response-routing flags can claim that
the DMA or HWPE was granted a private-memory access in the previous
cycle — impossible under the firmware constraints, but the start state
does not know that.  The flag then routes the (victim-dependent) private
memory read data into the engine's data buffer.

As the paper observes, "the false counterexamples ... involve only few
state variables and the associated invariants are straightforward to
formulate": the fix is pinning those routing flags to zero.  Each
invariant is 1-inductive under the firmware constraints and is proven by
:func:`verify_soc_invariants` before use.
"""

from __future__ import annotations

from ..formal.induction import InductionResult, prove_invariant
from ..rtl.expr import Expr

__all__ = [
    "spy_response_invariants",
    "blocked_initiator_invariants",
    "verify_soc_invariants",
]


def spy_response_invariants(soc) -> list[Expr]:
    """No DMA/HWPE response routed from the private memory.

    The routing flag ``resp_priv_ram_m<i>`` records "master i was granted
    priv_ram last cycle"; with firmware keeping the engines out of the
    private device, the flags of every non-CPU master are always 0.
    """
    circuit = soc.circuit
    latency = soc.address_map.region("priv_ram").latency
    out: list[Expr] = []
    master_index = 1  # master 0 is the CPU / victim interface
    for ip in ("dma", "hwpe"):
        if getattr(soc, ip) is None:
            continue
        for stage in range(latency):
            suffix = f"_s{stage}" if latency > 1 else ""
            reg = circuit.regs.get(
                f"soc.xbar.resp_priv_ram{suffix}_m{master_index}"
            )
            if reg is not None:
                out.append(reg.read.eq(0))
        master_index += 1
    return out


def blocked_initiator_invariants(soc) -> list[Expr]:
    """No response ever routed to a blocked initiator, on any slave.

    The ``block_initiator`` countermeasure ties the engine's
    request-valid off, so it is never granted and every one of its
    response-routing flags is always 0 — each pin is 1-inductive with no
    assumptions at all (the grant is structurally constant false).
    Without them, the symbolic IPC start state could claim a phantom
    in-flight response for the blocked engine and route
    victim-modulated device buffers into its persistent state.
    """
    from .countermeasures import blocked_initiators

    circuit = soc.circuit
    blocked = blocked_initiators(soc.config)
    out: list[Expr] = []
    if not blocked:
        return out
    master_index = 1  # master 0 is the CPU / victim interface
    for ip in ("dma", "hwpe"):
        if getattr(soc, ip) is None:
            continue
        if ip in blocked:
            for region in soc.address_map.regions:
                for stage in range(region.latency):
                    suffix = f"_s{stage}" if region.latency > 1 else ""
                    reg = circuit.regs.get(
                        f"soc.xbar.resp_{region.name}{suffix}_m{master_index}"
                    )
                    if reg is not None:
                        out.append(reg.read.eq(0))
        master_index += 1
    return out


def verify_soc_invariants(soc, k: int = 1) -> InductionResult:
    """Prove the SoC invariants by k-induction under firmware constraints.

    The base case runs from reset; the step case assumes the invariant in
    a symbolic state — exactly the justification required before the
    UPEC-SSC miter may assume them at cycle ``t``.
    """
    tm = soc.threat_model
    invariants = spy_response_invariants(soc) \
        + blocked_initiator_invariants(soc)
    if not invariants:
        return InductionResult(proved=True)
    return prove_invariant(
        soc.circuit,
        invariants,
        k=k,
        assumptions=list(tm.firmware_constraints) if tm else [],
    )
