"""SoC address map construction.

Lays out the word-addressed bus space: the public memory at address 0,
the private memory next, then one page per peripheral register block.
All regions are power-of-two sized and size-aligned, so address decoding
is a mask compare and the symbolic victim page maps cleanly onto device
words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import SocConfig
from .crossbar import SlaveRegion

__all__ = ["AddressMap", "build_address_map"]


@dataclass
class AddressMap:
    """Ordered slave regions plus name-based lookup helpers."""

    regions: list[SlaveRegion] = field(default_factory=list)

    def index_of(self, name: str) -> int:
        """Slave index of a region name."""
        for i, region in enumerate(self.regions):
            if region.name == name:
                return i
        raise KeyError(f"no region named {name!r}")

    def region(self, name: str) -> SlaveRegion:
        """Region by name."""
        return self.regions[self.index_of(name)]

    def base(self, name: str) -> int:
        """Base word address of a region."""
        return self.region(name).base

    def has(self, name: str) -> bool:
        """Whether a region exists."""
        return any(r.name == name for r in self.regions)

    def pages_of(self, name: str, page_bits: int) -> range:
        """Page indices covered by a region."""
        region = self.region(name)
        return range(region.base >> page_bits,
                     (region.base + region.size) >> page_bits)

    def format_table(self) -> str:
        """Aligned text rendering of the map."""
        lines = [f"{'region':<12} {'base':>6} {'size':>6}"]
        lines.append("-" * 26)
        for region in self.regions:
            lines.append(
                f"{region.name:<12} {region.base:>#6x} {region.size:>6}"
            )
        return "\n".join(lines)


def build_address_map(cfg: SocConfig) -> AddressMap:
    """Lay out the bus regions for a configuration."""
    amap = AddressMap()
    cursor = 0

    def add(name: str, size: int, latency: int = 1) -> None:
        nonlocal cursor
        if size & (size - 1):
            raise ValueError(f"region {name}: size {size} not a power of two")
        cursor = (cursor + size - 1) & ~(size - 1)  # align up
        if cursor + size > (1 << cfg.addr_width):
            raise ValueError(
                f"address space overflow placing {name}: widen addr_width"
            )
        amap.regions.append(
            SlaveRegion(name=name, base=cursor, size=size, latency=latency)
        )
        cursor += size

    add("pub_ram", cfg.pub_mem_words)
    add("priv_ram", cfg.priv_mem_words, latency=cfg.priv_mem_latency)
    # Peripheral register blocks decode 3 offset bits (up to 8 registers),
    # so their regions are at least 8 words even with smaller pages.
    block = max(cfg.page_size, 8)
    if cfg.include_dma:
        add("dma", block)
    if cfg.include_hwpe:
        add("hwpe", block)
    if cfg.include_timer:
        add("timer", block)
    if cfg.include_uart:
        add("uart", block)
    if cfg.include_gpio:
        add("gpio", block)
    if cfg.include_spi:
        add("spi", block)

    # Constant-latency shims: a patched region answers with the slowest
    # device's latency.  Raising the region's declared latency here keeps
    # the crossbar's response routing aligned with the padded device
    # (build_soc adds the matching register stages on the response path).
    from .countermeasures import const_latency_regions

    shimmed = const_latency_regions(cfg)
    if shimmed:
        target = max(r.latency for r in amap.regions)
        for name in sorted(shimmed):
            if not amap.has(name):
                raise ValueError(
                    f"countermeasure 'const_latency:{name}' names a region "
                    f"absent from this configuration"
                )
            amap.region(name).latency = target
    return amap
