"""A two-pass assembler for the RV32I subset.

Turns attack/victim firmware written as assembly text into word images
for the instruction ROM.  Supports labels, ``.word`` data, ``.org``,
decimal/hex immediates, ``%hi``/``%lo`` relocations, the usual load/store
``offset(reg)`` syntax, and the pseudo-instructions the firmware needs
(``li``, ``la``, ``mv``, ``nop``, ``j``, ``ret``, ``call``).
"""

from __future__ import annotations

import re

from . import isa

__all__ = ["AssemblyError", "assemble"]


class AssemblyError(Exception):
    """Raised for malformed assembly input, with the offending line."""


_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_reg(token: str) -> int:
    token = token.strip().lower()
    if token in isa.ABI_REGS:
        return isa.ABI_REGS[token]
    raise AssemblyError(f"unknown register {token!r}")


def _to_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad integer {token!r}") from None


class _Assembler:
    def __init__(self, text: str, origin: int):
        self.lines = text.splitlines()
        self.origin = origin
        self.labels: dict[str, int] = {}

    # -- pass 1: lay out addresses -----------------------------------------

    def _statements(self):
        for lineno, raw in enumerate(self.lines, start=1):
            line = raw.split("#")[0].split("//")[0].strip()
            if not line:
                continue
            while ":" in line:
                label, line = line.split(":", 1)
                yield lineno, "label", label.strip()
                line = line.strip()
            if line:
                yield lineno, "stmt", line

    def layout(self) -> list[tuple[int, int, str]]:
        """Returns (lineno, address, statement) triples with labels bound."""
        out = []
        pc = self.origin
        for lineno, kind, text in self._statements():
            if kind == "label":
                if text in self.labels:
                    raise AssemblyError(f"line {lineno}: duplicate label {text!r}")
                self.labels[text] = pc
                continue
            op = text.split()[0].lower()
            if op == ".org":
                pc = _to_int(text.split()[1])
                continue
            out.append((lineno, pc, text))
            pc += 4 * self._size_in_words(text)
        return out

    def _size_in_words(self, stmt: str) -> int:
        op, *rest = stmt.split(None, 1)
        op = op.lower()
        if op == ".word":
            return len(rest[0].split(","))
        if op in ("li", "la", "call"):
            return 2  # conservatively lui+addi / auipc+jalr
        return 1

    # -- pass 2: encode --------------------------------------------------------

    def resolve(self, token: str, pc: int) -> int:
        token = token.strip()
        match = re.match(r"%(hi|lo)\((.+)\)$", token)
        if match:
            value = self.resolve(match.group(2), pc)
            if match.group(1) == "hi":
                return ((value + 0x800) >> 12) & 0xFFFFF
            return value & 0xFFF
        if token in self.labels:
            return self.labels[token]
        return _to_int(token)

    def encode(self, lineno: int, pc: int, stmt: str) -> list[int]:
        try:
            return self._encode(pc, stmt)
        except AssemblyError:
            raise
        except ValueError as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc

    def _encode(self, pc: int, stmt: str) -> list[int]:
        parts = stmt.split(None, 1)
        op = parts[0].lower()
        args = [a.strip() for a in parts[1].split(",")] if len(parts) > 1 else []

        if op == ".word":
            return [self.resolve(a, pc) & 0xFFFFFFFF for a in args]
        if op == "nop":
            return [isa.encode_i(0, 0, 0, 0, isa.OP_IMM)]
        if op == "mv":
            return [isa.encode_i(0, _parse_reg(args[1]), 0,
                                 _parse_reg(args[0]), isa.OP_IMM)]
        if op == "li":
            return self._encode_li(_parse_reg(args[0]), self.resolve(args[1], pc))
        if op == "la":
            return self._encode_li(_parse_reg(args[0]), self.resolve(args[1], pc))
        if op == "j":
            return [isa.encode_j(self.resolve(args[0], pc) - pc, 0)]
        if op == "ret":
            return [isa.encode_i(0, 1, 0, 0, isa.OP_JALR)]
        if op == "call":
            target = self.resolve(args[0], pc)
            offset = target - pc
            hi = ((offset + 0x800) >> 12) & 0xFFFFF
            lo = offset & 0xFFF
            if lo >= 0x800:
                lo -= 0x1000
            return [
                isa.encode_u(hi, 1, isa.OP_AUIPC),
                isa.encode_i(lo, 1, 0, 1, isa.OP_JALR),
            ]
        if op in isa.R_TYPE:
            funct3, funct7 = isa.R_TYPE[op]
            rd, rs1, rs2 = (_parse_reg(a) for a in args)
            return [isa.encode_r(funct7, rs2, rs1, funct3, rd)]
        if op in isa.I_TYPE and op not in ("slli", "srli", "srai"):
            rd, rs1 = _parse_reg(args[0]), _parse_reg(args[1])
            imm = self.resolve(args[2], pc)
            return [isa.encode_i(imm, rs1, isa.I_TYPE[op], rd, isa.OP_IMM)]
        if op in ("slli", "srli", "srai"):
            rd, rs1 = _parse_reg(args[0]), _parse_reg(args[1])
            shamt = self.resolve(args[2], pc)
            if not 0 <= shamt < 32:
                raise AssemblyError(f"shift amount {shamt} out of range")
            imm = shamt | (0b0100000 << 5 if op == "srai" else 0)
            return [isa.encode_i(imm, rs1, isa.I_TYPE[op], rd, isa.OP_IMM)]
        if op in isa.B_TYPE:
            rs1, rs2 = _parse_reg(args[0]), _parse_reg(args[1])
            offset = self.resolve(args[2], pc) - pc
            return [isa.encode_b(offset, rs2, rs1, isa.B_TYPE[op])]
        if op == "lui":
            return [isa.encode_u(self.resolve(args[1], pc), _parse_reg(args[0]),
                                 isa.OP_LUI)]
        if op == "auipc":
            return [isa.encode_u(self.resolve(args[1], pc), _parse_reg(args[0]),
                                 isa.OP_AUIPC)]
        if op == "jal":
            if len(args) == 1:
                rd, target = 1, args[0]
            else:
                rd, target = _parse_reg(args[0]), args[1]
            return [isa.encode_j(self.resolve(target, pc) - pc, rd)]
        if op == "jalr":
            if len(args) == 1:
                return [isa.encode_i(0, _parse_reg(args[0]), 0, 1, isa.OP_JALR)]
            rd = _parse_reg(args[0])
            match = _MEM_RE.match(args[1])
            if match:
                imm = self.resolve(match.group(1), pc)
                rs1 = _parse_reg(match.group(2))
            else:
                rs1 = _parse_reg(args[1])
                imm = self.resolve(args[2], pc) if len(args) > 2 else 0
            return [isa.encode_i(imm, rs1, 0, rd, isa.OP_JALR)]
        if op in ("lw", "sw"):
            reg = _parse_reg(args[0])
            match = _MEM_RE.match(args[1])
            if not match:
                raise AssemblyError(f"expected offset(base), got {args[1]!r}")
            imm = self.resolve(match.group(1), pc)
            base = _parse_reg(match.group(2))
            if op == "lw":
                return [isa.encode_i(imm, base, 0b010, reg, isa.OP_LOAD)]
            return [isa.encode_s(imm, reg, base, 0b010)]
        raise AssemblyError(f"unknown mnemonic {op!r}")

    def _encode_li(self, rd: int, value: int) -> list[int]:
        value &= 0xFFFFFFFF
        lo = value & 0xFFF
        if lo >= 0x800:
            lo -= 0x1000
        hi = ((value - lo) >> 12) & 0xFFFFF
        # Always two words so pass-1 layout stays correct.
        out = [isa.encode_u(hi, rd, isa.OP_LUI)]
        out.append(isa.encode_i(lo, rd, 0b000, rd, isa.OP_IMM))
        return out


def assemble(text: str, origin: int = 0) -> dict[int, int]:
    """Assemble ``text``; returns a {byte_address: instruction_word} map.

    Two passes: label layout, then encoding.  ``origin`` sets the address
    of the first instruction.
    """
    asm = _Assembler(text, origin)
    layout = asm.layout()
    image: dict[int, int] = {}
    for lineno, pc, stmt in layout:
        words = asm.encode(lineno, pc, stmt)
        for i, word in enumerate(words):
            addr = pc + 4 * i
            if addr in image:
                raise AssemblyError(f"line {lineno}: address {addr:#x} reused")
            image[addr] = word
    return image
