"""RV32I-subset instruction encodings.

The Pulpissimo case study uses a 2-stage RISC-V core; our simulation core
implements the RV32I subset sufficient for the attack firmware: ALU
register/immediate ops, LUI/AUIPC, JAL/JALR, conditional branches, and
word loads/stores.  Encodings follow the RISC-V ISA manual, so the
assembled images are genuine RV32 machine code.
"""

from __future__ import annotations

__all__ = [
    "OPCODES",
    "R_TYPE",
    "I_TYPE",
    "B_TYPE",
    "encode_r",
    "encode_i",
    "encode_s",
    "encode_b",
    "encode_u",
    "encode_j",
    "ABI_REGS",
]

OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_REG = 0b0110011

OPCODES = {
    "lui": OP_LUI,
    "auipc": OP_AUIPC,
    "jal": OP_JAL,
    "jalr": OP_JALR,
    "lw": OP_LOAD,
    "sw": OP_STORE,
}

#: R-type: name -> (funct3, funct7)
R_TYPE = {
    "add": (0b000, 0b0000000),
    "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000),
    "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000),
    "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000),
    "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000),
    "and": (0b111, 0b0000000),
}

#: I-type ALU: name -> funct3 (shifts carry funct7 in the immediate)
I_TYPE = {
    "addi": 0b000,
    "slti": 0b010,
    "sltiu": 0b011,
    "xori": 0b100,
    "ori": 0b110,
    "andi": 0b111,
    "slli": 0b001,
    "srli": 0b101,
    "srai": 0b101,
}

#: Branches: name -> funct3
B_TYPE = {
    "beq": 0b000,
    "bne": 0b001,
    "blt": 0b100,
    "bge": 0b101,
    "bltu": 0b110,
    "bgeu": 0b111,
}

#: ABI register names.
ABI_REGS = {"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4}
ABI_REGS.update({f"t{i}": reg for i, reg in zip(range(3), (5, 6, 7))})
ABI_REGS.update({"s0": 8, "fp": 8, "s1": 9})
ABI_REGS.update({f"a{i}": 10 + i for i in range(8)})
ABI_REGS.update({f"s{i}": 16 + i for i in range(2, 12)})
ABI_REGS.update({f"t{i}": 25 + i for i in range(3, 7)})
ABI_REGS.update({f"x{i}": i for i in range(32)})


def _check_reg(reg: int) -> int:
    if not 0 <= reg < 32:
        raise ValueError(f"register x{reg} out of range")
    return reg


def _field(value: int, bits: int, signed: bool) -> int:
    lo = -(1 << (bits - 1)) if signed else 0
    hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    if not lo <= value <= hi:
        raise ValueError(f"immediate {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def encode_r(funct7: int, rs2: int, rs1: int, funct3: int, rd: int) -> int:
    """R-type: register-register ALU operations."""
    return (
        (funct7 << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15)
        | (funct3 << 12) | (_check_reg(rd) << 7) | OP_REG
    )


def encode_i(imm: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    """I-type: immediates, loads, JALR."""
    return (
        (_field(imm, 12, signed=True) << 20) | (_check_reg(rs1) << 15)
        | (funct3 << 12) | (_check_reg(rd) << 7) | opcode
    )


def encode_s(imm: int, rs2: int, rs1: int, funct3: int) -> int:
    """S-type: stores."""
    value = _field(imm, 12, signed=True)
    return (
        ((value >> 5) << 25) | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15) | (funct3 << 12)
        | ((value & 0x1F) << 7) | OP_STORE
    )


def encode_b(imm: int, rs2: int, rs1: int, funct3: int) -> int:
    """B-type: conditional branches (byte offset, even)."""
    if imm % 2:
        raise ValueError("branch offset must be even")
    value = _field(imm, 13, signed=True)
    return (
        (((value >> 12) & 1) << 31) | (((value >> 5) & 0x3F) << 25)
        | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15) | (funct3 << 12)
        | (((value >> 1) & 0xF) << 8) | (((value >> 11) & 1) << 7) | OP_BRANCH
    )


def encode_u(imm: int, rd: int, opcode: int) -> int:
    """U-type: LUI/AUIPC (imm is the upper-20-bit value)."""
    return (_field(imm, 20, signed=False) << 12) | (_check_reg(rd) << 7) | opcode


def encode_j(imm: int, rd: int) -> int:
    """J-type: JAL (byte offset, even)."""
    if imm % 2:
        raise ValueError("jump offset must be even")
    value = _field(imm, 21, signed=True)
    return (
        (((value >> 20) & 1) << 31) | (((value >> 1) & 0x3FF) << 21)
        | (((value >> 11) & 1) << 20) | (((value >> 12) & 0xFF) << 12)
        | (_check_reg(rd) << 7) | OP_JAL
    )
