"""RV32I-subset CPU: ISA encodings, assembler, and the simulation core."""

from .assembler import AssemblyError, assemble
from .core import SimpleRv32Core

__all__ = ["AssemblyError", "assemble", "SimpleRv32Core"]
