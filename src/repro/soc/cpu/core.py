"""RV32I-subset processor core (simulation builds).

A single-issue in-order core: one instruction per cycle for ALU/branch
work, plus bus-stall cycles for loads and stores.  Pulpissimo's RI5CY/
Ibex cores are 2/4-stage pipelines; the pipeline depth is irrelevant to
the SoC-side channel (the CPU is excluded from the formal analysis by
Obs. 1 and Def. 1), so the simulation core favours simplicity — the
substitution is recorded in DESIGN.md.

The core fetches from a dedicated instruction ROM port and issues data
accesses through an OBI master port; when the crossbar withholds ``gnt``
(contention with the DMA/HWPE), the core stalls — the victim-side half
of the timing channel.
"""

from __future__ import annotations

from ...rtl.circuit import Scope
from ...rtl.expr import Const, Expr, cat, const, mux, sext, zext
from ..obi import ObiRequest, ObiResponse
from . import isa

__all__ = ["SimpleRv32Core"]

_RUN, _WAIT_RDATA = 0, 1


class SimpleRv32Core:
    """The CPU: fetch/execute with bus stalls, 32x32 register file.

    Args:
        scope: naming scope; all registers carry ``kind="cpu"`` so the
            UPEC classifier excludes them from ``S_not_victim``.
        rom_words: size of the instruction ROM (behavioural memory).
        bus_addr_width: word-address width of the data bus.
    """

    def __init__(self, scope: Scope, name: str, rom_words: int,
                 bus_addr_width: int):
        self.scope = scope.child(name)
        self.bus_addr_width = bus_addr_width
        s = self.scope
        c = s.circuit
        self.rom = s.memory("rom", rom_words, 32)
        self.regfile = s.memory("regfile", 32, 32)
        self.pc = s.reg("pc", 32, kind="cpu")
        self.state = s.reg("state", 1, kind="cpu")
        self.load_rd = s.reg("load_rd", 5, kind="cpu")
        self.retired = s.reg("retired", 32, kind="cpu")

        rom_bits = max(1, (rom_words - 1).bit_length())
        instr = c.mem_read(self.rom, self.pc[rom_bits + 1 : 2])
        self.instr = s.net("instr", instr)
        s.net("pc_net", self.pc)

        # -- decode ---------------------------------------------------------
        opcode = instr[6:0]
        self.rd = instr[11:7]
        funct3 = instr[14:12]
        rs1 = instr[19:15]
        rs2 = instr[24:20]
        funct7 = instr[31:25]
        imm_i = sext(instr[31:20], 32)
        imm_s = sext(cat(instr[31:25], instr[11:7]), 32)
        imm_b = sext(
            cat(instr[31], instr[7], instr[30:25], instr[11:8], const(0, 1)), 32
        )
        imm_u = cat(instr[31:12], const(0, 12))
        imm_j = sext(
            cat(instr[31], instr[19:12], instr[20], instr[30:21], const(0, 1)),
            32,
        )

        rs1_val = mux(rs1.eq(0), const(0, 32), c.mem_read(self.regfile, rs1))
        rs2_val = mux(rs2.eq(0), const(0, 32), c.mem_read(self.regfile, rs2))
        self.rs1_val, self.rs2_val = rs1_val, rs2_val

        is_lui = opcode.eq(isa.OP_LUI)
        is_auipc = opcode.eq(isa.OP_AUIPC)
        is_jal = opcode.eq(isa.OP_JAL)
        is_jalr = opcode.eq(isa.OP_JALR)
        is_branch = opcode.eq(isa.OP_BRANCH)
        is_load = opcode.eq(isa.OP_LOAD)
        is_store = opcode.eq(isa.OP_STORE)
        is_imm = opcode.eq(isa.OP_IMM)
        is_reg = opcode.eq(isa.OP_REG)

        # -- ALU ----------------------------------------------------------------
        src2 = mux(is_reg, rs2_val, imm_i)
        shamt = src2[4:0]
        sub_bit = funct7[5]
        add_sub = mux(is_reg & sub_bit, rs1_val - src2, rs1_val + src2)
        shift_right = mux(sub_bit, rs1_val.ashr(shamt), rs1_val >> shamt)
        alu = add_sub
        alu = mux(funct3.eq(0b001), rs1_val << shamt, alu)
        alu = mux(funct3.eq(0b010), zext(rs1_val.slt(src2), 32), alu)
        alu = mux(funct3.eq(0b011), zext(rs1_val.ult(src2), 32), alu)
        alu = mux(funct3.eq(0b100), rs1_val ^ src2, alu)
        alu = mux(funct3.eq(0b101), shift_right, alu)
        alu = mux(funct3.eq(0b110), rs1_val | src2, alu)
        alu = mux(funct3.eq(0b111), rs1_val & src2, alu)

        # -- branch resolution -----------------------------------------------------
        eq = rs1_val.eq(rs2_val)
        lt = rs1_val.slt(rs2_val)
        ltu = rs1_val.ult(rs2_val)
        taken = eq
        taken = mux(funct3.eq(0b001), ~eq, taken)
        taken = mux(funct3.eq(0b100), lt, taken)
        taken = mux(funct3.eq(0b101), ~lt, taken)
        taken = mux(funct3.eq(0b110), ltu, taken)
        taken = mux(funct3.eq(0b111), ~ltu, taken)

        # -- data bus request (Moore: state-derived only) ----------------------------
        running = self.state.eq(_RUN)
        mem_byte_addr = rs1_val + mux(is_store, imm_s, imm_i)
        bus_addr = mem_byte_addr[bus_addr_width + 1 : 2]
        self.request = ObiRequest(
            valid=running & (is_load | is_store),
            addr=bus_addr,
            we=is_store,
            wdata=rs2_val,
        )
        s.net("dreq_valid", self.request.valid)
        s.net("dreq_addr", self.request.addr)

        # Stash decode results needed by connect().
        self._dec = {
            "is_lui": is_lui, "is_auipc": is_auipc, "is_jal": is_jal,
            "is_jalr": is_jalr, "is_branch": is_branch, "is_load": is_load,
            "is_store": is_store, "is_imm": is_imm, "is_reg": is_reg,
            "alu": alu, "taken": taken, "imm_u": imm_u, "imm_j": imm_j,
            "imm_b": imm_b, "imm_i": imm_i, "running": running,
        }

    def connect(self, response: ObiResponse) -> None:
        """Close the loop with the data-bus response; drives all state."""
        s = self.scope
        c = s.circuit
        d = self._dec
        running = d["running"]
        waiting = self.state.eq(_WAIT_RDATA)
        gnt = response.gnt

        # Completion of the instruction currently in execute.
        alu_like = d["is_lui"] | d["is_auipc"] | d["is_imm"] | d["is_reg"]
        control = d["is_jal"] | d["is_jalr"] | d["is_branch"]
        store_done = running & d["is_store"] & gnt
        load_issued = running & d["is_load"] & gnt
        load_done = waiting & response.rvalid
        complete = (running & (alu_like | control)) | store_done | load_done

        # Program counter.
        pc_plus4 = self.pc + 4
        next_pc = pc_plus4
        next_pc = mux(d["is_branch"] & d["taken"], self.pc + d["imm_b"], next_pc)
        next_pc = mux(d["is_jal"], self.pc + d["imm_j"], next_pc)
        next_pc = mux(
            d["is_jalr"],
            (self.rs1_val + d["imm_i"]) & const(0xFFFFFFFE, 32),
            next_pc,
        )
        advance = (running & (alu_like | control)) | store_done
        c.set_next(
            self.pc,
            mux(advance, next_pc, mux(load_done, pc_plus4, self.pc)),
        )

        # FSM: block in WAIT_RDATA between load grant and rvalid.
        c.set_next(
            self.state,
            mux(load_issued, Const(_WAIT_RDATA, 1),
                mux(load_done, Const(_RUN, 1), self.state)),
        )
        c.set_next(self.load_rd, mux(load_issued, self.rd, self.load_rd))
        c.set_next(self.retired, mux(complete, self.retired + 1, self.retired))

        # Register file writeback.
        wb_value = d["alu"]
        wb_value = mux(d["is_lui"], d["imm_u"], wb_value)
        wb_value = mux(d["is_auipc"], self.pc + d["imm_u"], wb_value)
        wb_value = mux(d["is_jal"] | d["is_jalr"], self.pc + 4, wb_value)
        wb_exec = running & (alu_like | d["is_jal"] | d["is_jalr"])
        wb_rd = mux(load_done, self.load_rd, self.rd)
        wb_enable = (wb_exec | load_done) & wb_rd.ne(0)
        wb_data = mux(load_done, response.rdata, wb_value)
        c.mem_write(self.regfile, wb_enable, wb_rd, wb_data)
