"""Configuration of the Pulpissimo-style SoC.

One :class:`SocConfig` drives both build flavours:

* **simulation** configs include the RV32-subset CPU and use behavioural
  memories (fast, thousands of cycles for the attack demos);
* **formal** configs cut the CPU (its data port becomes the symbolic
  victim interface, per Obs. 1 of the paper) and use register-file
  memories so every word is an individually classifiable state variable.

The address space is word-addressed and divided into aligned pages of
``2**page_bits`` words; the symbolic protected range of the threat model
is one such page.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["SocConfig", "FORMAL_TINY", "FORMAL_SMALL", "ATTACK_DEMO",
           "SIM_DEFAULT", "BASE_CONFIGS", "named_config", "expand_variants"]


@dataclass
class SocConfig:
    """Parameters of the SoC build.

    Attributes:
        data_width: width of data words and registers.
        addr_width: width of bus addresses (word addressing).
        page_bits: log2 of the page size in words; the protected victim
            range is one page.
        pub_mem_words / priv_mem_words: sizes of the two memory devices
            (Pulpissimo's public and private L2 memories, Sec. 4.2).
        include_cpu: build the 2-stage RV32-subset core (simulation) or
            cut it and expose the victim interface (formal).
        include_dma / include_hwpe / include_timer / include_uart /
        include_gpio / include_spi: peripheral selection; ``E5`` builds a
            timer-less SoC, ``E9`` an HWPE-less one.
        priv_mem_latency: response latency of the private memory device
            (its guarded-RAM pipeline; the public memory is single-cycle).
        secure: apply the countermeasure — firmware constraints denying
            DMA/HWPE access to the private memory, plus the victim page
            constrained to private pages.
        rom_words: simulation-only instruction ROM size.
        dma_counter_bits / hwpe_counter_bits: width of transfer counters.
        arbitration: per-slave policy, ``"rr"`` (round-robin),
            ``"fixed"`` (master index priority) or ``"tdm"``
            (fixed-slot time-division arbitration).
        countermeasures: structural countermeasure transforms applied
            during :func:`~repro.soc.pulpissimo.build_soc` (spec strings
            understood by :mod:`repro.soc.countermeasures`, e.g.
            ``"tdm_arbitration"`` or ``"block_initiator:dma"``).
            Canonicalized (sorted, deduplicated) so patched designs get
            stable, distinct ``variant_id()`` cache addresses.
    """

    data_width: int = 8
    addr_width: int = 10
    page_bits: int = 2
    pub_mem_words: int = 8
    priv_mem_words: int = 4
    include_cpu: bool = False
    include_dma: bool = True
    include_hwpe: bool = True
    include_timer: bool = True
    include_uart: bool = True
    include_gpio: bool = True
    include_spi: bool = False
    secure: bool = False
    rom_words: int = 256
    dma_counter_bits: int = 4
    hwpe_counter_bits: int = 4
    arbitration: str = "rr"
    priv_mem_latency: int = 2
    countermeasures: tuple = ()

    def __post_init__(self) -> None:
        if self.arbitration not in ("rr", "fixed", "tdm"):
            raise ValueError(f"unknown arbitration policy {self.arbitration!r}")
        from .countermeasures import normalize_countermeasures

        self.countermeasures = normalize_countermeasures(self.countermeasures)
        if self.page_bits < 1:
            raise ValueError("page_bits must be >= 1")
        page = self.page_size
        for name, words in (
            ("pub_mem_words", self.pub_mem_words),
            ("priv_mem_words", self.priv_mem_words),
        ):
            if words % page:
                raise ValueError(
                    f"{name}={words} must be a multiple of the page size {page}"
                )
        if self.addr_width <= self.page_bits:
            raise ValueError("addr_width must exceed page_bits")

    @property
    def page_size(self) -> int:
        """Page size in words."""
        return 1 << self.page_bits

    @property
    def page_index_width(self) -> int:
        """Width of a page index (the symbolic victim-page input)."""
        return self.addr_width - self.page_bits

    def replace(self, **kwargs) -> "SocConfig":
        """A copy of this config with some fields overridden."""
        from dataclasses import replace

        return replace(self, **kwargs)

    def variant_id(self) -> str:
        """Stable, human-readable identity of this configuration.

        The canonical ``field=value`` list of every field that differs
        from the dataclass defaults, in declaration order — identical
        configs always produce identical ids, so the string is usable as
        a cache / report key across processes and runs.
        """
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                if f.name == "countermeasures":
                    value = "+".join(value)
                parts.append(f"{f.name}={value}")
        return ",".join(parts) or "default"

    @classmethod
    def from_variant_id(cls, variant_id: str) -> "SocConfig":
        """Rebuild a configuration from its :meth:`variant_id` string.

        The inverse of :meth:`variant_id` — what lets a
        :class:`~repro.verify.Verdict` rebuild the design it talks about
        from its provenance fingerprint alone (e.g. for counterexample
        replay).  Only SoC fingerprints parse; builder/raw fingerprints
        raise :class:`ValueError`.
        """
        if variant_id == "default":
            return cls()
        by_name = {f.name: f for f in dataclasses.fields(cls)}
        overrides: dict[str, object] = {}
        for part in variant_id.split(","):
            name, sep, raw = part.partition("=")
            if not sep or name not in by_name:
                raise ValueError(
                    f"cannot parse variant id {variant_id!r}: "
                    f"bad field assignment {part!r}"
                )
            if name == "countermeasures":
                overrides[name] = tuple(raw.split("+")) if raw else ()
            elif by_name[name].type == "bool" or isinstance(
                    by_name[name].default, bool):
                if raw not in ("True", "False"):
                    raise ValueError(
                        f"cannot parse variant id {variant_id!r}: "
                        f"field {name!r} expects True/False, got {raw!r}"
                    )
                overrides[name] = raw == "True"
            elif isinstance(by_name[name].default, int):
                overrides[name] = int(raw)
            else:
                overrides[name] = raw
        return cls(**overrides)

    def to_dict(self) -> dict:
        """JSON-ready representation (all fields)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "SocConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected so a stale spec file fails loudly.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown SocConfig fields: {', '.join(sorted(unknown))}"
            )
        return cls(**dict(data))


#: Smallest formal configuration: used by unit tests.
FORMAL_TINY = SocConfig(
    data_width=8,
    addr_width=10,
    page_bits=2,
    pub_mem_words=8,
    priv_mem_words=4,
    include_uart=False,
    include_gpio=False,
)

#: Default formal configuration for the benchmark campaign.
FORMAL_SMALL = SocConfig(
    data_width=8,
    addr_width=12,
    page_bits=2,
    pub_mem_words=16,
    priv_mem_words=8,
    include_uart=True,
    include_gpio=True,
    include_spi=True,
)

#: Attack-demonstration configuration: CPU-cut like the formal builds but
#: with a larger public memory so the HWPE's progress ruler has enough
#: resolution over a realistic recording window.
ATTACK_DEMO = SocConfig(
    data_width=8,
    addr_width=12,
    page_bits=2,
    pub_mem_words=64,
    priv_mem_words=8,
    dma_counter_bits=6,
    hwpe_counter_bits=6,
    include_spi=False,
)

#: Simulation configuration: full CPU, 32-bit datapath, behavioural memories.
SIM_DEFAULT = SocConfig(
    data_width=32,
    addr_width=16,
    page_bits=4,
    pub_mem_words=256,
    priv_mem_words=64,
    include_cpu=True,
    include_spi=True,
    rom_words=1024,
    dma_counter_bits=8,
    hwpe_counter_bits=8,
)

#: Named base configurations addressable from serialized campaign specs.
BASE_CONFIGS: dict[str, SocConfig] = {
    "FORMAL_TINY": FORMAL_TINY,
    "FORMAL_SMALL": FORMAL_SMALL,
    "ATTACK_DEMO": ATTACK_DEMO,
    "SIM_DEFAULT": SIM_DEFAULT,
}


def named_config(name: str) -> SocConfig:
    """Resolve a base configuration by its exported name."""
    try:
        return BASE_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown base config {name!r}; "
            f"known: {', '.join(sorted(BASE_CONFIGS))}"
        ) from None


def expand_variants(
    base: SocConfig,
    variants: Mapping[str, Mapping[str, object]],
) -> list[tuple[str, SocConfig]]:
    """Expand named field-override sets into concrete configurations.

    ``variants`` maps a variant name to the ``SocConfig`` fields it
    overrides on ``base`` (an empty mapping is the base itself).  The
    result preserves the mapping's insertion order, so a campaign grid
    expands deterministically.
    """
    out: list[tuple[str, SocConfig]] = []
    for name, overrides in variants.items():
        out.append((name, base.replace(**dict(overrides))))
    return out
