"""HWPE-style accelerator: the spy of the new BUSted variant (Sec. 4.1).

The Hardware Processing Engine "can be configured to fetch its inputs
directly from the memory, perform complex arithmetic operations on the
data, and write the results back to a configured memory region".  In the
attack found by UPEC-SSC, the attacker primes a writable region with
zeros and programs the HWPE to progressively overwrite it with non-zero
values; victim memory accesses create interconnect contention that
delays the engine, so the *overwrite progress* visible after the context
switch encodes the number of victim accesses — no timer needed.

Like the DMA, the HWPE is master (streaming engine) plus slave
(configuration/status registers); all its registers are ``ip`` state.
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import Const, Expr, mux, zext
from .obi import ObiRequest, ObiResponse

__all__ = ["Hwpe"]

# FSM states.
_IDLE, _READ, _COMPUTE, _WRITE = 0, 1, 2, 3

# Configuration register map (word offsets within the HWPE page).
REG_SRC, REG_DST, REG_LEN, REG_COEF, REG_CTRL, REG_STATUS = range(6)

# Operation select (REG_CTRL bits [2:1]).
OP_MAC, OP_XOR, OP_ADD = 0, 1, 2


class Hwpe:
    """A streaming accelerator: read, compute, write back, repeat.

    Per element: read ``src+i``; one compute cycle applying the selected
    operation with the ``coef`` register; write the result to ``dst+i``.
    The ``progress`` counter (elements written back) is the persistent,
    attacker-readable state that carries the side channel — both directly
    (status register) and through the primed memory region itself.
    """

    def __init__(self, scope: Scope, name: str, addr_width: int,
                 data_width: int, counter_bits: int):
        self.scope = scope.child(name)
        self.addr_width = addr_width
        self.data_width = data_width
        self.counter_bits = counter_bits
        s = self.scope
        # Configuration registers.
        self.src = s.reg("src", addr_width, kind="ip")
        self.dst = s.reg("dst", addr_width, kind="ip")
        self.length = s.reg("len", counter_bits, kind="ip")
        self.coef = s.reg("coef", data_width, kind="ip")
        self.op = s.reg("op", 2, kind="ip")
        self.busy = s.reg("busy", 1, kind="ip")
        # Engine state.
        self.state = s.reg("state", 2, kind="ip")
        self.progress = s.reg("progress", counter_bits, kind="ip")
        self.operand = s.reg("operand", data_width, kind="ip",
                             persistent=False)
        self.result = s.reg("result", data_width, kind="ip",
                            persistent=False)
        self.acc = s.reg("acc", data_width, kind="ip")
        # Master request (Moore).
        reading = self.state.eq(_READ)
        writing = self.state.eq(_WRITE)
        index_ext = zext(self.progress, addr_width)
        self.request = ObiRequest(
            valid=reading | writing,
            addr=mux(writing, self.dst + index_ext, self.src + index_ext),
            we=writing,
            wdata=self.result,
        )
        s.net("req_valid", self.request.valid)
        s.net("req_addr", self.request.addr)
        # Config-slave response registers (Moore: usable before connect()).
        self._cfg_rvalid = s.reg("cfg_rvalid", 1, kind="interconnect")
        self._cfg_rdata = s.reg("cfg_rdata", data_width, kind="interconnect")
        self.slave_response = ObiResponse(
            gnt=Const(1, 1), rvalid=self._cfg_rvalid, rdata=self._cfg_rdata
        )

    def connect(self, response: ObiResponse, cfg: ObiRequest) -> None:
        """Close the loop with the crossbar response and the config port."""
        s = self.scope
        c = s.circuit
        gnt = response.gnt
        idle = self.state.eq(_IDLE)
        reading = self.state.eq(_READ)
        computing = self.state.eq(_COMPUTE)
        writing = self.state.eq(_WRITE)

        cfg_write = cfg.valid & cfg.we
        offset = cfg.addr[2:0]
        ctrl_hit = cfg_write & offset.eq(REG_CTRL)
        start = ctrl_hit & cfg.wdata[0]
        # Writing CTRL with the run bit clear aborts a running transfer
        # (the attacker uses this to freeze the progress ruler before
        # scanning the primed region).
        stop = ctrl_hit & ~cfg.wdata[0]

        next_progress = self.progress + 1
        done = next_progress.eq(self.length)

        # FSM.
        next_state = self.state
        next_state = mux(idle & start, Const(_READ, 2), next_state)
        next_state = mux(reading & response.rvalid, Const(_COMPUTE, 2), next_state)
        next_state = mux(computing, Const(_WRITE, 2), next_state)
        next_state = mux(
            writing & gnt,
            mux(done, Const(_IDLE, 2), Const(_READ, 2)),
            next_state,
        )
        next_state = mux(stop, Const(_IDLE, 2), next_state)
        c.set_next(self.state, next_state)

        c.set_next(self.operand,
                   mux(response.rvalid, response.rdata, self.operand))
        # Compute unit: one-cycle MAC / XOR / ADD with the coefficient.
        mac = self.operand * self.coef + self.acc
        computed = mux(
            self.op.eq(OP_XOR),
            self.operand ^ self.coef,
            mux(self.op.eq(OP_ADD), self.operand + self.coef, mac),
        )
        c.set_next(self.result, mux(computing, computed, self.result))
        c.set_next(self.acc, mux(computing & self.op.eq(OP_MAC), mac, self.acc))

        c.set_next(
            self.progress,
            mux(idle & start, Const(0, self.counter_bits),
                mux(writing & gnt, next_progress, self.progress)),
        )
        c.set_next(
            self.busy,
            mux(idle & start, Const(1, 1),
                mux((writing & gnt & done) | stop, Const(0, 1), self.busy)),
        )

        # Configuration writes (ignored while busy).
        def cfg_reg(reg: Expr, index: int, source: Expr | None = None) -> None:
            hit = cfg_write & offset.eq(index) & ~self.busy
            value = source if source is not None else cfg.wdata
            if reg.width < value.width:
                value = value[reg.width - 1 : 0]
            elif reg.width > value.width:
                value = zext(value, reg.width)
            c.set_next(reg, mux(hit, value, reg))

        cfg_reg(self.src, REG_SRC)
        cfg_reg(self.dst, REG_DST)
        cfg_reg(self.length, REG_LEN)
        cfg_reg(self.coef, REG_COEF)
        cfg_reg(self.op, REG_CTRL, source=cfg.wdata[2:1])

        # Status read-back: busy flag plus overwrite progress.
        status = zext(self.busy, self.data_width) | (
            zext(self.progress, self.data_width) << 1
        )
        read_mux = status
        for reg, index in (
            (self.src, REG_SRC),
            (self.dst, REG_DST),
            (self.length, REG_LEN),
            (self.coef, REG_COEF),
        ):
            value = zext(reg, self.data_width) if reg.width < self.data_width \
                else reg[self.data_width - 1 : 0]
            read_mux = mux(offset.eq(index), value, read_mux)
        c.set_next(self._cfg_rvalid, cfg.valid & ~cfg.we)
        c.set_next(
            self._cfg_rdata,
            mux(cfg.valid & ~cfg.we, read_mux, self._cfg_rdata),
        )
