"""OBI-style bus protocol bundles.

The Pulpissimo SoC uses the Open Bus Interface: a master asserts ``valid``
with address/write/wdata; the interconnect answers with a combinational
``gnt`` in the same cycle (address phase) and, for reads, ``rvalid`` +
``rdata`` in a later cycle (response phase).  A master that is not
granted must hold its request — this stalling under contention is
precisely the timing channel studied in the paper.

Bundles are plain dataclasses of expressions; modules are built Moore
style (requests depend only on registers), which keeps the composition
acyclic: requests first, crossbar second, slave responses third, master
next-state logic last.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.expr import Const, Expr

__all__ = ["ObiRequest", "ObiResponse", "idle_request"]


@dataclass
class ObiRequest:
    """Master request bundle (address phase).

    Attributes:
        valid: 1-bit, request pending.
        addr: word address.
        we: 1-bit, 1 = write.
        wdata: write data.
    """

    valid: Expr
    addr: Expr
    we: Expr
    wdata: Expr

    def __post_init__(self) -> None:
        if self.valid.width != 1 or self.we.width != 1:
            raise ValueError("valid and we must be 1-bit")


@dataclass
class ObiResponse:
    """Response bundle seen by one master.

    Attributes:
        gnt: 1-bit, combinational grant of the current request.
        rvalid: 1-bit, read data valid (one cycle after a granted read).
        rdata: read data.
    """

    gnt: Expr
    rvalid: Expr
    rdata: Expr


def idle_request(addr_width: int, data_width: int) -> ObiRequest:
    """A permanently idle master request (used to tie off unused ports)."""
    return ObiRequest(
        valid=Const(0, 1),
        addr=Const(0, addr_width),
        we=Const(0, 1),
        wdata=Const(0, data_width),
    )
