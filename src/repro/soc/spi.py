"""SPI master peripheral (mode 0, transmit/receive shift register).

Register map (word offsets): 0 = DATA (write starts an 8-bit transfer;
read returns the last received byte), 1 = STATUS (bit0 busy),
2 = CLKDIV.  ``miso`` is a true primary input; ``mosi``/``sck``/``cs_n``
are probe nets.
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import Const, cat, mux, zext
from .obi import ObiRequest, ObiResponse

__all__ = ["Spi"]

REG_DATA, REG_STATUS, REG_CLKDIV = range(3)


class Spi:
    """A minimal SPI master with a programmable clock divider."""

    def __init__(self, scope: Scope, name: str, data_width: int):
        self.scope = scope.child(name)
        self.data_width = data_width
        s = self.scope
        self.busy = s.reg("busy", 1, kind="ip")
        self.shift = s.reg("shift", 8, kind="ip")
        self.bit_cnt = s.reg("bit_cnt", 4, kind="ip")
        self.clk_div = s.reg("clk_div", 8, kind="ip", reset=2)
        self.clk_cnt = s.reg("clk_cnt", 8, kind="ip")
        self.sck = s.reg("sck", 1, kind="ip")
        self.miso = s.input("miso", 1)
        s.net("mosi", self.shift[7])
        s.net("cs_n", ~self.busy)
        self._rvalid = s.reg("rvalid_q", 1, kind="interconnect")
        self._rdata = s.reg("rdata_q", data_width, kind="interconnect")
        self.slave_response = ObiResponse(
            gnt=Const(1, 1), rvalid=self._rvalid, rdata=self._rdata
        )

    def connect(self, cfg: ObiRequest) -> None:
        """Attach the register port; drives all SPI state."""
        s = self.scope
        c = s.circuit
        cfg_write = cfg.valid & cfg.we
        offset = cfg.addr[1:0]
        start = cfg_write & offset.eq(REG_DATA) & ~self.busy
        tick = self.busy & self.clk_cnt.eq(self.clk_div)

        # Toggle sck on each divider tick; sample+shift on falling edge.
        falling = tick & self.sck
        c.set_next(self.sck, mux(tick, ~self.sck, self.sck & self.busy))
        c.set_next(self.clk_cnt, mux(tick | ~self.busy, Const(0, 8),
                                     self.clk_cnt + 1))
        next_shift = mux(start, cfg.wdata[7:0], self.shift)
        next_shift = mux(falling, cat(self.shift[6:0], self.miso), next_shift)
        c.set_next(self.shift, next_shift)
        next_bits = mux(start, Const(0, 4),
                        mux(falling, self.bit_cnt + 1, self.bit_cnt))
        c.set_next(self.bit_cnt, next_bits)
        done = falling & self.bit_cnt.eq(7)
        c.set_next(self.busy, mux(start, Const(1, 1),
                                  mux(done, Const(0, 1), self.busy)))

        read_mux = zext(self.shift, self.data_width) \
            if self.data_width > 8 else self.shift[self.data_width - 1 : 0]
        read_mux = mux(offset.eq(REG_STATUS), zext(self.busy, self.data_width),
                       read_mux)
        div_read = zext(self.clk_div, self.data_width) \
            if self.data_width > 8 else self.clk_div[self.data_width - 1 : 0]
        read_mux = mux(offset.eq(REG_CLKDIV), div_read, read_mux)
        div_hit = cfg_write & offset.eq(REG_CLKDIV)
        wide = zext(cfg.wdata, 8) if cfg.wdata.width < 8 else cfg.wdata[7:0]
        c.set_next(self.clk_div, mux(div_hit, wide, self.clk_div))
        c.set_next(self._rvalid, cfg.valid & ~cfg.we)
        c.set_next(self._rdata, mux(cfg.valid & ~cfg.we, read_mux, self._rdata))
