"""SRAM slave devices.

Two flavours mirror the two memory types of the case study (Sec. 4.2):

* :class:`Sram` — single-cycle device used for the public memory;
* response latency is configurable (``pipeline_stages``), and the
  *private* memory of the secured SoC uses a 2-stage response pipeline
  (modelling an ECC/guarded RAM) — each stage is a transient buffer that
  the UPEC-SSC procedure removes in successive iterations, which is what
  gives the multi-iteration secure proof of the paper its shape.

Both flavours exist with register-file storage (formal) or behavioural
storage (simulation).
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import Const, Expr, mux
from ..rtl.memory import RegisterFileMemory
from .obi import ObiRequest, ObiResponse

__all__ = ["Sram"]


class Sram:
    """A word-addressed RAM slave.

    Args:
        scope: naming scope (one child scope per device).
        name: device name.
        words: capacity in words.
        data_width: word width.
        base: bus base address (word address of word 0).
        behavioural: use a simulation-only memory array instead of one
            register per word.
        accessible: S_pers annotation for the stored words (True for the
            public memory: the attacker task can read it back in the
            retrieval phase).
        pipeline_stages: response latency in cycles (1 = classic OBI
            SRAM).  0 returns a *combinational* response — used by the
            TDM crossbar countermeasure, whose per-master response
            pipelines replace the device-shared one.
        init: optional initial memory image.
    """

    def __init__(
        self,
        scope: Scope,
        name: str,
        words: int,
        data_width: int,
        base: int,
        behavioural: bool = False,
        accessible: bool | None = True,
        pipeline_stages: int = 1,
        init: list[int] | None = None,
    ):
        if pipeline_stages < 0:
            raise ValueError("pipeline_stages must be >= 0")
        self.scope = scope.child(name)
        self.name = name
        self.words = words
        self.base = base
        self.data_width = data_width
        self.behavioural = behavioural
        self.pipeline_stages = pipeline_stages
        circuit = self.scope.circuit
        if behavioural:
            self.mem = self.scope.memory("mem", words, data_width)
            if init:
                self.mem.init[: len(init)] = [
                    v & ((1 << data_width) - 1) for v in init
                ]
            self.array_name = self.mem.name
        else:
            self.rf = RegisterFileMemory(
                self.scope, "mem", words, data_width,
                accessible=accessible, init=init,
            )
            self.array_name = self.scope._qualify("mem").replace(".mem", "") + ".mem"

    def connect(self, req: ObiRequest) -> ObiResponse:
        """Attach the (already arbitrated) request; returns the response.

        Reads return data after ``pipeline_stages`` cycles; writes commit
        at the end of the request cycle.  The device always grants.
        """
        scope = self.scope
        circuit = scope.circuit
        local_addr = self._local_addr(req.addr)
        write = req.valid & req.we
        read = req.valid & ~req.we
        if self.behavioural:
            circuit.mem_write(self.mem, write, local_addr, req.wdata)
            read_data = circuit.mem_read(self.mem, local_addr)
        else:
            self.rf.write(write, local_addr, req.wdata)
            read_data = self.rf.read(local_addr)

        # Response pipeline: stage registers are transient buffers —
        # overwritten by every transaction (not in S_pers, Sec. 3.4).
        rvalid: Expr = read
        rdata: Expr = read_data
        for stage in range(self.pipeline_stages):
            valid_q = scope.reg(f"rvalid_q{stage}", 1, kind="interconnect")
            data_q = scope.reg(
                f"rdata_q{stage}", self.data_width,
                kind="interconnect", persistent=False,
            )
            circuit.set_next(valid_q, rvalid)
            circuit.set_next(data_q, mux(rvalid, rdata, data_q))
            rvalid, rdata = valid_q, data_q
        return ObiResponse(gnt=Const(1, 1), rvalid=rvalid, rdata=rdata)

    def _local_addr(self, addr: Expr) -> Expr:
        bits = max(1, (self.words - 1).bit_length())
        return addr[bits - 1 : 0]
