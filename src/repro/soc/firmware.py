"""Firmware constraints implementing the countermeasure (Sec. 4.2).

The paper's fix restricts access to the private memory device "for very
few IPs"; the restrictions are "a set of legal configurations for the
corresponding IPs and can be compiled as a set of firmware constraints
to be checked for compliance during firmware development".

We express the compiled form directly: whenever the DMA or HWPE issues a
bus request, its address lies outside the private memory region.  A
legally configured engine (transfer windows disjoint from the private
device) satisfies this by construction; :func:`config_word_is_legal`
gives the firmware-development-time compliance check for concrete
configuration values.
"""

from __future__ import annotations

from ..rtl.expr import Expr, all_of, implies
from ..upec.threat_model import ThreatModel

__all__ = [
    "private_region_constraints",
    "victim_page_in_private",
    "config_word_is_legal",
]


def private_region_constraints(soc) -> list[Expr]:
    """Assumptions: no DMA/HWPE request ever targets the private memory."""
    region = soc.address_map.region("priv_ram")
    circuit = soc.circuit
    out: list[Expr] = []
    for ip in ("dma", "hwpe"):
        valid_name = f"soc.{ip}.req_valid"
        if valid_name not in circuit.nets:
            continue
        valid = circuit.nets[valid_name]
        addr = circuit.nets[f"soc.{ip}.req_addr"]
        out.append(implies(valid, ~region.decode(addr)))
    return out


def victim_page_in_private(soc, tm: ThreatModel) -> Expr:
    """Constraint confining the symbolic victim page to the private memory."""
    cfg = soc.config
    pages = soc.address_map.pages_of("priv_ram", cfg.page_bits)
    page_input = tm.page_input
    return all_of([page_input.uge(pages.start) & page_input.ult(pages.stop)])


def config_word_is_legal(soc, src: int, dst: int, length: int) -> bool:
    """Firmware-development-time compliance check for one transfer window.

    Returns True when the window ``[src, src+length)`` / ``[dst,
    dst+length)`` never touches the private memory device — the check a
    firmware build system would run over every DMA/HWPE configuration in
    the image (the process referenced from [Mehmedagic et al. 2023]).
    """
    region = soc.address_map.region("priv_ram")
    for base in (src, dst):
        lo, hi = base, base + max(length, 1) - 1
        if lo <= region.base + region.size - 1 and hi >= region.base:
            return False
    return True
