"""Timer IP.

The classic measurement device of timing attacks (Fig. 1: the DMA "then
starts the timer"; step 4: "the attacker task reads the timer state or
waits for a timer overflow event").  The case-study's key point is that
the HWPE variant leaks *without* this IP — benchmark E5 builds the SoC
with ``include_timer=False`` and shows the vulnerability persists.

Register map (word offsets): 0 = CTRL (bit0 enable, bit1 clear),
1 = VALUE (current count, read-only), 2 = COMPARE, 3 = STATUS (bit0
overflow sticky flag, write-1-to-clear).
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import Const, mux, zext
from .obi import ObiRequest, ObiResponse

__all__ = ["Timer"]

REG_CTRL, REG_VALUE, REG_COMPARE, REG_STATUS = range(4)


class Timer:
    """A free-running compare timer with a sticky overflow flag."""

    def __init__(self, scope: Scope, name: str, data_width: int):
        self.scope = scope.child(name)
        self.data_width = data_width
        s = self.scope
        self.enable = s.reg("enable", 1, kind="ip")
        self.count = s.reg("count", data_width, kind="ip")
        self.compare = s.reg("compare", data_width, kind="ip")
        self.overflow = s.reg("overflow", 1, kind="ip")
        self._rvalid = s.reg("rvalid_q", 1, kind="interconnect")
        self._rdata = s.reg("rdata_q", data_width, kind="interconnect")
        self.slave_response = ObiResponse(
            gnt=Const(1, 1), rvalid=self._rvalid, rdata=self._rdata
        )

    def connect(self, cfg: ObiRequest) -> None:
        """Attach the register port; drives all timer state."""
        s = self.scope
        c = s.circuit
        cfg_write = cfg.valid & cfg.we
        offset = cfg.addr[1:0]

        ctrl_hit = cfg_write & offset.eq(REG_CTRL)
        clear = ctrl_hit & cfg.wdata[1]
        c.set_next(self.enable, mux(ctrl_hit, cfg.wdata[0], self.enable))

        ticked = self.count + 1
        next_count = mux(self.enable, ticked, self.count)
        next_count = mux(clear, Const(0, self.data_width), next_count)
        c.set_next(self.count, next_count)

        compare_hit = cfg_write & offset.eq(REG_COMPARE)
        c.set_next(
            self.compare,
            mux(compare_hit, cfg.wdata[self.compare.width - 1 : 0], self.compare),
        )

        hit_compare = self.enable & ticked.eq(self.compare)
        status_clear = cfg_write & offset.eq(REG_STATUS) & cfg.wdata[0]
        next_overflow = mux(hit_compare, Const(1, 1), self.overflow)
        next_overflow = mux(status_clear, Const(0, 1), next_overflow)
        c.set_next(self.overflow, next_overflow)

        read_mux = zext(self.enable, self.data_width)
        read_mux = mux(offset.eq(REG_VALUE), self.count, read_mux)
        read_mux = mux(offset.eq(REG_COMPARE), self.compare, read_mux)
        read_mux = mux(
            offset.eq(REG_STATUS), zext(self.overflow, self.data_width), read_mux
        )
        c.set_next(self._rvalid, cfg.valid & ~cfg.we)
        c.set_next(self._rdata, mux(cfg.valid & ~cfg.we, read_mux, self._rdata))
