"""DMA engine: memory-to-memory copies plus a timer kick.

This is the spying IP of the original BUSted-style attack sketched in
Fig. 1 of the paper: the attacker programs a transfer, context-switches
to the victim, and the transfer's *progress* — observable afterwards in
the DMA's counters or in the timer it starts on completion — encodes how
often the victim contended for the same memory device.

The DMA is both a bus **slave** (configuration registers) and a bus
**master** (the transfer engine).  Configuration registers are ``ip``
state: persistent and attacker-readable, hence in ``S_pers``.
"""

from __future__ import annotations

from ..rtl.circuit import Scope
from ..rtl.expr import Const, Expr, mux, zext
from .obi import ObiRequest, ObiResponse

__all__ = ["Dma"]

# FSM states.
_IDLE, _READ, _WRITE, _KICK = 0, 1, 2, 3

# Configuration register map (word offsets within the DMA page).
REG_SRC, REG_DST, REG_LEN, REG_CTRL, REG_KICK_ADDR, REG_KICK_DATA = range(6)


class Dma:
    """A single-channel DMA with an optional completion write ("kick").

    Transfer protocol: for ``len`` words, read ``src+i`` then write
    ``dst+i``.  When the transfer completes and a kick address is
    configured (non-zero), one extra write is issued to it — this is how
    the Fig. 1 attacker makes the DMA "start the timer" after its memory
    accesses.
    """

    def __init__(self, scope: Scope, name: str, addr_width: int,
                 data_width: int, counter_bits: int):
        self.scope = scope.child(name)
        self.addr_width = addr_width
        self.data_width = data_width
        self.counter_bits = counter_bits
        s = self.scope
        c = s.circuit
        # Configuration registers (attacker-accessible IP state).
        self.src = s.reg("src", addr_width, kind="ip")
        self.dst = s.reg("dst", addr_width, kind="ip")
        self.length = s.reg("len", counter_bits, kind="ip")
        self.busy = s.reg("busy", 1, kind="ip")
        self.kick_addr = s.reg("kick_addr", addr_width, kind="ip")
        self.kick_data = s.reg("kick_data", data_width, kind="ip")
        # Engine state.
        self.state = s.reg("state", 2, kind="ip")
        self.index = s.reg("index", counter_bits, kind="ip")
        self.data_buf = s.reg("data_buf", data_width, kind="ip",
                              persistent=False)
        # Master request (Moore: function of registers only).
        reading = self.state.eq(_READ)
        writing = self.state.eq(_WRITE)
        kicking = self.state.eq(_KICK)
        index_ext = zext(self.index, addr_width)
        req_addr = mux(
            kicking,
            self.kick_addr,
            mux(writing, self.dst + index_ext, self.src + index_ext),
        )
        self.request = ObiRequest(
            valid=reading | writing | kicking,
            addr=req_addr,
            we=writing | kicking,
            wdata=mux(kicking, self.kick_data, self.data_buf),
        )
        s.net("req_valid", self.request.valid)
        s.net("req_addr", self.request.addr)
        # Config-slave response registers (Moore: usable before connect()).
        self._cfg_rvalid = s.reg("cfg_rvalid", 1, kind="interconnect")
        self._cfg_rdata = s.reg("cfg_rdata", data_width, kind="interconnect")
        self.slave_response = ObiResponse(
            gnt=Const(1, 1), rvalid=self._cfg_rvalid, rdata=self._cfg_rdata
        )

    def connect(self, response: ObiResponse, cfg: ObiRequest) -> None:
        """Close the loop: master response in, config-slave interface in.

        Args:
            response: the crossbar's response to :attr:`request`.
            cfg: the (arbitrated) request hitting the DMA's register page.
        """
        s = self.scope
        c = s.circuit
        gnt = response.gnt
        reading = self.state.eq(_READ)
        writing = self.state.eq(_WRITE)
        kicking = self.state.eq(_KICK)
        idle = self.state.eq(_IDLE)

        cfg_write = cfg.valid & cfg.we
        offset = cfg.addr[2:0]
        start = cfg_write & offset.eq(REG_CTRL) & cfg.wdata[0]

        # Transfer-complete condition: last word written.
        next_index = self.index + 1
        last_word = next_index.eq(self.length)
        has_kick = self.kick_addr.ne(0)

        # FSM.
        next_state = self.state
        next_state = mux(idle & start, Const(_READ, 2), next_state)
        next_state = mux(reading & response.rvalid, Const(_WRITE, 2), next_state)
        after_write = mux(
            last_word,
            mux(has_kick, Const(_KICK, 2), Const(_IDLE, 2)),
            Const(_READ, 2),
        )
        next_state = mux(writing & gnt, after_write, next_state)
        next_state = mux(kicking & gnt, Const(_IDLE, 2), next_state)
        c.set_next(self.state, next_state)

        c.set_next(
            self.index,
            mux(idle & start, Const(0, self.counter_bits),
                mux(writing & gnt, next_index, self.index)),
        )
        c.set_next(self.data_buf,
                   mux(response.rvalid, response.rdata, self.data_buf))
        c.set_next(
            self.busy,
            mux(idle & start, Const(1, 1),
                mux((writing & gnt & last_word & ~has_kick)
                    | (kicking & gnt), Const(0, 1), self.busy)),
        )

        # Configuration writes (ignored while busy, like real DMA engines).
        def cfg_reg(reg: Expr, index: int) -> None:
            hit = cfg_write & offset.eq(index) & ~self.busy
            value = cfg.wdata
            if reg.width < value.width:
                value = value[reg.width - 1 : 0]
            elif reg.width > value.width:
                value = zext(value, reg.width)
            c.set_next(reg, mux(hit, value, reg))

        cfg_reg(self.src, REG_SRC)
        cfg_reg(self.dst, REG_DST)
        cfg_reg(self.length, REG_LEN)
        cfg_reg(self.kick_addr, REG_KICK_ADDR)
        cfg_reg(self.kick_data, REG_KICK_DATA)

        # Config read-back: status register exposes busy + progress.
        status = zext(self.busy, self.data_width) | (
            zext(self.index, self.data_width) << 1
        )
        read_mux = status
        for reg, index in (
            (self.src, REG_SRC),
            (self.dst, REG_DST),
            (self.length, REG_LEN),
            (self.kick_addr, REG_KICK_ADDR),
            (self.kick_data, REG_KICK_DATA),
        ):
            value = zext(reg, self.data_width) if reg.width < self.data_width \
                else reg[self.data_width - 1 : 0]
            read_mux = mux(offset.eq(index), value, read_mux)
        c.set_next(self._cfg_rvalid, cfg.valid & ~cfg.we)
        c.set_next(
            self._cfg_rdata,
            mux(cfg.valid & ~cfg.we, read_mux, self._cfg_rdata),
        )
