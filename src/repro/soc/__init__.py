"""Pulpissimo-style MCU SoC: CPU, crossbar, DMA, HWPE, peripherals.

The case-study substrate of the paper (Sec. 4).  ``build_soc`` assembles
a vulnerable or secured SoC from a :class:`SocConfig`; formal builds cut
the CPU and come with a ready :class:`~repro.upec.ThreatModel`.
"""

from .address_map import AddressMap, build_address_map
from .config import (
    ATTACK_DEMO,
    BASE_CONFIGS,
    FORMAL_SMALL,
    FORMAL_TINY,
    SIM_DEFAULT,
    SocConfig,
    expand_variants,
    named_config,
)
from .crossbar import Crossbar, SlaveRegion
from .dma import Dma
from .firmware import config_word_is_legal, private_region_constraints
from .gpio import Gpio
from .hwpe import Hwpe
from .obi import ObiRequest, ObiResponse, idle_request
from .pulpissimo import Soc, build_soc
from .spi import Spi
from .sram import Sram
from .timer import Timer
from .uart import Uart

__all__ = [
    "AddressMap",
    "build_address_map",
    "ATTACK_DEMO",
    "BASE_CONFIGS",
    "FORMAL_SMALL",
    "FORMAL_TINY",
    "SIM_DEFAULT",
    "SocConfig",
    "expand_variants",
    "named_config",
    "Crossbar",
    "SlaveRegion",
    "Dma",
    "config_word_is_legal",
    "private_region_constraints",
    "Gpio",
    "Hwpe",
    "ObiRequest",
    "ObiResponse",
    "idle_request",
    "Soc",
    "build_soc",
    "Spi",
    "Sram",
    "Timer",
    "Uart",
]
