"""N-master x M-slave crossbar with per-slave arbitration.

This is the on-chip communication structure whose *contention* carries
the timing side channel: when two masters address the same slave in the
same cycle, the arbiter grants one and stalls the other, so the stalled
master's progress becomes a function of the other master's (possibly
confidential) access pattern.

Pulpissimo connects its public and private memories through two separate
crossbars; modelling both as slaves of one crossbar with *independent
per-slave arbiters* preserves the relevant behaviour (no head-of-line
blocking between devices, contention only within a device) — the
substitution is recorded in DESIGN.md.

Arbitration is round-robin (pointer register per slave, classified as
``interconnect`` state: overwritten on every transaction, hence outside
``S_pers`` per Sec. 3.4 of the paper) or fixed priority.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.circuit import Scope
from ..rtl.expr import Const, Expr, any_of, mux
from .obi import ObiRequest, ObiResponse

__all__ = ["SlaveRegion", "Crossbar"]


@dataclass
class SlaveRegion:
    """Address-map entry: an aligned power-of-two region for one slave.

    ``latency`` is the slave's fixed response latency in cycles; the
    crossbar delays its response-routing decision by the same amount so
    read data returns to the master that issued the request even when
    responses from a multi-cycle device overlap with later grants.
    """

    name: str
    base: int
    size: int
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size < 1 or self.size & (self.size - 1):
            raise ValueError(f"region {self.name}: size must be a power of two")
        if self.base % self.size:
            raise ValueError(f"region {self.name}: base must be size-aligned")
        if self.latency < 1:
            raise ValueError(f"region {self.name}: latency must be >= 1")

    def contains(self, addr: int) -> bool:
        """Whether a concrete word address falls in this region."""
        return self.base <= addr < self.base + self.size

    def decode(self, addr: Expr) -> Expr:
        """1-bit expression: ``addr`` falls in this region."""
        return (addr & ~Const(self.size - 1, addr.width)).eq(self.base)


class Crossbar:
    """Combinational address-decoded crossbar with registered response routing.

    Build protocol (Moore composition):

    1. construct with the master request bundles and the address map;
    2. feed each ``slave_request[s]`` to the corresponding slave device
       and collect its :class:`ObiResponse`;
    3. call :meth:`connect_slaves` with those responses to obtain the
       per-master :class:`ObiResponse` bundles.
    """

    def __init__(
        self,
        scope: Scope,
        masters: list[ObiRequest],
        regions: list[SlaveRegion],
        arbitration: str = "rr",
    ):
        if not masters:
            raise ValueError("crossbar needs at least one master")
        self.scope = scope
        self.masters = masters
        self.regions = regions
        self.num_masters = len(masters)
        self.num_slaves = len(regions)
        self._check_overlaps()
        circuit = scope.circuit
        addr_width = masters[0].addr.width
        data_width = masters[0].wdata.width

        # Per (master, slave): master requests this slave.
        self._targets: list[list[Expr]] = [
            [m.valid & region.decode(m.addr) for region in regions]
            for m in masters
        ]

        # Per-slave arbitration -> grant matrix.
        self._grant: list[list[Expr]] = [
            [None] * self.num_slaves for _ in range(self.num_masters)
        ]
        self._rr_ptrs: list[Expr | None] = []
        for s, region in enumerate(regions):
            requests = [self._targets[m][s] for m in range(self.num_masters)]
            grants, ptr = self._arbitrate(scope, region.name, requests, arbitration)
            self._rr_ptrs.append(ptr)
            for m in range(self.num_masters):
                self._grant[m][s] = grants[m]

        # Muxed request per slave (winner's fields).
        self.slave_requests: list[ObiRequest] = []
        for s in range(self.num_slaves):
            valid = any_of(self._grant[m][s] for m in range(self.num_masters))
            addr = Const(0, addr_width)
            we = Const(0, 1)
            wdata = Const(0, data_width)
            for m in range(self.num_masters):
                g = self._grant[m][s]
                addr = mux(g, masters[m].addr, addr)
                we = mux(g, masters[m].we, we)
                wdata = mux(g, masters[m].wdata, wdata)
            self.slave_requests.append(
                ObiRequest(valid=valid, addr=addr, we=we, wdata=wdata)
            )

        # Response routing: a per-slave shift pipeline of grant vectors,
        # one stage per cycle of slave latency, so the response is matched
        # to the master granted ``latency`` cycles earlier.
        self._resp_master: list[list[Expr]] = []
        for s, region in enumerate(regions):
            stage_in = [self._grant[m][s] for m in range(self.num_masters)]
            for stage in range(region.latency):
                row = []
                for m in range(self.num_masters):
                    suffix = f"_s{stage}" if region.latency > 1 else ""
                    flag = scope.reg(
                        f"resp_{region.name}{suffix}_m{m}", 1,
                        kind="interconnect",
                    )
                    circuit.set_next(flag, stage_in[m])
                    row.append(flag)
                stage_in = row
            self._resp_master.append(stage_in)

    # -- arbitration -----------------------------------------------------------

    def _arbitrate(
        self,
        scope: Scope,
        slave_name: str,
        requests: list[Expr],
        arbitration: str,
    ) -> tuple[list[Expr], Expr | None]:
        n = len(requests)
        if n == 1:
            return list(requests), None
        if arbitration == "fixed":
            grants = []
            blocked = Const(0, 1)
            for req in requests:
                grants.append(req & ~blocked)
                blocked = blocked | req
            return grants, None
        # Round-robin: the pointer names the master granted last; priority
        # starts one past it.  The pointer is interconnect state.
        ptr_bits = max(1, (n - 1).bit_length())
        ptr = scope.reg(f"rr_{slave_name}", ptr_bits, kind="interconnect")
        grants: list[Expr] = [Const(0, 1)] * n
        # For each pointer value, fixed-priority starting at ptr+1.  The
        # last case absorbs out-of-range pointer encodings (unreachable
        # from reset, but the symbolic starting state of IPC includes
        # them — robust decoding keeps the arbiter work-conserving from
        # *any* state, avoiding needless invariants).
        for p in range(n):
            ptr_is_p = ptr.eq(p) if p < n - 1 else ptr.uge(n - 1)
            blocked = Const(0, 1)
            for offset in range(1, n + 1):
                m = (p + offset) % n
                grant_here = ptr_is_p & requests[m] & ~blocked
                grants[m] = grants[m] | grant_here
                blocked = blocked | requests[m]
        # Pointer follows the granted master (holds when slave is idle).
        next_ptr = ptr
        for m in range(n):
            next_ptr = mux(grants[m], Const(m, ptr_bits), next_ptr)
        scope.circuit.set_next(ptr, next_ptr)
        return grants, ptr

    def _check_overlaps(self) -> None:
        spans = sorted((r.base, r.base + r.size, r.name) for r in self.regions)
        for (b1, e1, n1), (b2, e2, n2) in zip(spans, spans[1:]):
            if b2 < e1:
                raise ValueError(f"regions {n1} and {n2} overlap")

    # -- response side -------------------------------------------------------------

    def grant_to(self, master: int) -> Expr:
        """Combinational grant back to ``master`` (any slave granted it)."""
        return any_of(self._grant[master][s] for s in range(self.num_slaves))

    def connect_slaves(self, responses: list[ObiResponse]) -> list[ObiResponse]:
        """Route slave responses back to masters; returns per-master bundles."""
        if len(responses) != self.num_slaves:
            raise ValueError(
                f"expected {self.num_slaves} slave responses, got {len(responses)}"
            )
        data_width = self.masters[0].wdata.width
        out: list[ObiResponse] = []
        for m in range(self.num_masters):
            rvalid = Const(0, 1)
            rdata = Const(0, data_width)
            for s, resp in enumerate(responses):
                mine = resp.rvalid & self._resp_master[s][m]
                rvalid = rvalid | mine
                rdata = mux(mine, resp.rdata, rdata)
            out.append(
                ObiResponse(gnt=self.grant_to(m), rvalid=rvalid, rdata=rdata)
            )
        return out
