"""N-master x M-slave crossbar with per-slave arbitration.

This is the on-chip communication structure whose *contention* carries
the timing side channel: when two masters address the same slave in the
same cycle, the arbiter grants one and stalls the other, so the stalled
master's progress becomes a function of the other master's (possibly
confidential) access pattern.

Pulpissimo connects its public and private memories through two separate
crossbars; modelling both as slaves of one crossbar with *independent
per-slave arbiters* preserves the relevant behaviour (no head-of-line
blocking between devices, contention only within a device) — the
substitution is recorded in DESIGN.md.

Arbitration is round-robin (pointer register per slave, classified as
``interconnect`` state: overwritten on every transaction, hence outside
``S_pers`` per Sec. 3.4 of the paper), fixed priority, or fixed-slot
TDM — the contention-free countermeasure policy: each master owns a
rotating time slot, so whether master ``m`` is granted depends only on
the free-running slot counter and ``m``'s own request, never on the
other masters' (possibly victim-modulated) traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.circuit import Scope
from ..rtl.expr import Const, Expr, any_of, mux
from .obi import ObiRequest, ObiResponse

__all__ = ["SlaveRegion", "Crossbar"]


@dataclass
class SlaveRegion:
    """Address-map entry: an aligned power-of-two region for one slave.

    ``latency`` is the slave's fixed response latency in cycles; the
    crossbar delays its response-routing decision by the same amount so
    read data returns to the master that issued the request even when
    responses from a multi-cycle device overlap with later grants.
    """

    name: str
    base: int
    size: int
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size < 1 or self.size & (self.size - 1):
            raise ValueError(f"region {self.name}: size must be a power of two")
        if self.base % self.size:
            raise ValueError(f"region {self.name}: base must be size-aligned")
        if self.latency < 1:
            raise ValueError(f"region {self.name}: latency must be >= 1")

    def contains(self, addr: int) -> bool:
        """Whether a concrete word address falls in this region."""
        return self.base <= addr < self.base + self.size

    def decode(self, addr: Expr) -> Expr:
        """1-bit expression: ``addr`` falls in this region."""
        return (addr & ~Const(self.size - 1, addr.width)).eq(self.base)


class Crossbar:
    """Combinational address-decoded crossbar with registered response routing.

    Build protocol (Moore composition):

    1. construct with the master request bundles and the address map;
    2. feed each ``slave_request[s]`` to the corresponding slave device
       and collect its :class:`ObiResponse`;
    3. call :meth:`connect_slaves` with those responses to obtain the
       per-master :class:`ObiResponse` bundles.
    """

    def __init__(
        self,
        scope: Scope,
        masters: list[ObiRequest],
        regions: list[SlaveRegion],
        arbitration: str = "rr",
    ):
        if not masters:
            raise ValueError("crossbar needs at least one master")
        self.scope = scope
        self.masters = masters
        self.regions = regions
        self.num_masters = len(masters)
        self.num_slaves = len(regions)
        self._check_overlaps()
        circuit = scope.circuit
        addr_width = masters[0].addr.width
        data_width = masters[0].wdata.width

        # Per (master, slave): master requests this slave.
        self._targets: list[list[Expr]] = [
            [m.valid & region.decode(m.addr) for region in regions]
            for m in masters
        ]

        # Per-slave arbitration -> grant matrix.
        self._grant: list[list[Expr]] = [
            [None] * self.num_slaves for _ in range(self.num_masters)
        ]
        self._rr_ptrs: list[Expr | None] = []
        for s, region in enumerate(regions):
            requests = [self._targets[m][s] for m in range(self.num_masters)]
            grants, ptr = self._arbitrate(scope, region.name, requests, arbitration)
            self._rr_ptrs.append(ptr)
            for m in range(self.num_masters):
                self._grant[m][s] = grants[m]

        # Muxed request per slave (winner's fields).
        self.slave_requests: list[ObiRequest] = []
        for s in range(self.num_slaves):
            valid = any_of(self._grant[m][s] for m in range(self.num_masters))
            addr = Const(0, addr_width)
            we = Const(0, 1)
            wdata = Const(0, data_width)
            for m in range(self.num_masters):
                g = self._grant[m][s]
                addr = mux(g, masters[m].addr, addr)
                we = mux(g, masters[m].we, we)
                wdata = mux(g, masters[m].wdata, wdata)
            self.slave_requests.append(
                ObiRequest(valid=valid, addr=addr, we=we, wdata=wdata)
            )

        # Response routing: a per-slave shift pipeline of grant vectors,
        # one stage per cycle of slave latency, so the response is matched
        # to the master granted ``latency`` cycles earlier.  Under TDM the
        # pipeline registers the *read* grant (grant & ~we): a master's
        # response-valid is then a function of its own traffic and the
        # free-running slot counter only, never of another master's
        # request stream — the response side of the contention-free
        # arbitration countermeasure.
        self.tdm = arbitration == "tdm"
        #: Per slave: the flag vectors of every pipeline stage, stage 0
        #: being the combinational grant (used by the TDM data chains).
        self._resp_stages: list[list[list[Expr]]] = []
        self._resp_master: list[list[Expr]] = []
        for s, region in enumerate(regions):
            if self.tdm:
                stage_in = [self._grant[m][s] & ~masters[m].we
                            for m in range(self.num_masters)]
            else:
                stage_in = [self._grant[m][s] for m in range(self.num_masters)]
            stages = [stage_in]
            for stage in range(region.latency):
                row = []
                for m in range(self.num_masters):
                    suffix = f"_s{stage}" if region.latency > 1 else ""
                    flag = scope.reg(
                        f"resp_{region.name}{suffix}_m{m}", 1,
                        kind="interconnect",
                    )
                    circuit.set_next(flag, stages[-1][m])
                    row.append(flag)
                stages.append(row)
            self._resp_stages.append(stages)
            self._resp_master.append(stages[-1])

    # -- arbitration -----------------------------------------------------------

    def _arbitrate(
        self,
        scope: Scope,
        slave_name: str,
        requests: list[Expr],
        arbitration: str,
    ) -> tuple[list[Expr], Expr | None]:
        n = len(requests)
        if n == 1:
            return list(requests), None
        if arbitration == "fixed":
            grants = []
            blocked = Const(0, 1)
            for req in requests:
                grants.append(req & ~blocked)
                blocked = blocked | req
            return grants, None
        if arbitration == "tdm":
            # Fixed-slot TDM: a free-running slot counter per slave; the
            # master whose index matches the slot is granted iff it
            # requests.  No grant ever reads another master's request,
            # so fabric timing carries no cross-master information.  The
            # final slot absorbs out-of-range encodings (the symbolic
            # IPC start state includes them) so the counter re-enters
            # the rotation from any state.
            slot_bits = max(1, (n - 1).bit_length())
            slot = scope.reg(f"tdm_{slave_name}", slot_bits,
                             kind="interconnect")
            grants = []
            for m in range(n):
                slot_is_m = slot.eq(m) if m < n - 1 else slot.uge(n - 1)
                grants.append(slot_is_m & requests[m])
            last = slot.uge(n - 1)
            scope.circuit.set_next(
                slot, mux(last, Const(0, slot_bits), slot + 1)
            )
            return grants, slot
        # Round-robin: the pointer names the master granted last; priority
        # starts one past it.  The pointer is interconnect state.
        ptr_bits = max(1, (n - 1).bit_length())
        ptr = scope.reg(f"rr_{slave_name}", ptr_bits, kind="interconnect")
        grants: list[Expr] = [Const(0, 1)] * n
        # For each pointer value, fixed-priority starting at ptr+1.  The
        # last case absorbs out-of-range pointer encodings (unreachable
        # from reset, but the symbolic starting state of IPC includes
        # them — robust decoding keeps the arbiter work-conserving from
        # *any* state, avoiding needless invariants).
        for p in range(n):
            ptr_is_p = ptr.eq(p) if p < n - 1 else ptr.uge(n - 1)
            blocked = Const(0, 1)
            for offset in range(1, n + 1):
                m = (p + offset) % n
                grant_here = ptr_is_p & requests[m] & ~blocked
                grants[m] = grants[m] | grant_here
                blocked = blocked | requests[m]
        # Pointer follows the granted master (holds when slave is idle).
        next_ptr = ptr
        for m in range(n):
            next_ptr = mux(grants[m], Const(m, ptr_bits), next_ptr)
        scope.circuit.set_next(ptr, next_ptr)
        return grants, ptr

    def _check_overlaps(self) -> None:
        spans = sorted((r.base, r.base + r.size, r.name) for r in self.regions)
        for (b1, e1, n1), (b2, e2, n2) in zip(spans, spans[1:]):
            if b2 < e1:
                raise ValueError(f"regions {n1} and {n2} overlap")

    # -- response side -------------------------------------------------------------

    def grant_to(self, master: int) -> Expr:
        """Combinational grant back to ``master`` (any slave granted it)."""
        return any_of(self._grant[master][s] for s in range(self.num_slaves))

    def connect_slaves(
        self,
        responses: list[ObiResponse],
        combinational: set[int] | None = None,
    ) -> list[ObiResponse]:
        """Route slave responses back to masters; returns per-master bundles.

        ``combinational`` names slave indices whose response is
        unregistered (TDM mode only): the crossbar builds a dedicated
        per-master data pipeline of the region's latency for each, so no
        response register is ever shared between masters — the data a
        spy engine receives cannot be modulated by another master's
        (possibly victim-dependent) traffic, not even from an
        unreachable symbolic start state.
        """
        if len(responses) != self.num_slaves:
            raise ValueError(
                f"expected {self.num_slaves} slave responses, got {len(responses)}"
            )
        combinational = set(combinational or ())
        if combinational and not self.tdm:
            raise ValueError(
                "combinational slave responses require TDM arbitration"
            )
        circuit = self.scope.circuit
        data_width = self.masters[0].wdata.width
        # Per-master data chains for combinational slaves: stage k holds
        # the word read k cycles after the grant, advanced by the
        # matching stage of the read-grant flag pipeline.
        chained: dict[int, list[Expr]] = {}
        for s in sorted(combinational):
            region = self.regions[s]
            per_master: list[Expr] = []
            for m in range(self.num_masters):
                data = responses[s].rdata
                for stage in range(region.latency):
                    suffix = f"_s{stage}" if region.latency > 1 else ""
                    buf = self.scope.reg(
                        f"rdata_{region.name}{suffix}_m{m}", data_width,
                        kind="interconnect", persistent=False,
                    )
                    circuit.set_next(
                        buf, mux(self._resp_stages[s][stage][m], data, buf)
                    )
                    data = buf
                per_master.append(data)
            chained[s] = per_master
        out: list[ObiResponse] = []
        for m in range(self.num_masters):
            rvalid = Const(0, 1)
            rdata = Const(0, data_width)
            for s, resp in enumerate(responses):
                if self.tdm:
                    # The registered read grant IS the response valid:
                    # devices always grant and answer reads after
                    # exactly ``latency`` cycles.
                    mine = self._resp_master[s][m]
                else:
                    mine = resp.rvalid & self._resp_master[s][m]
                rvalid = rvalid | mine
                source = chained[s][m] if s in chained else resp.rdata
                rdata = mux(mine, source, rdata)
            out.append(
                ObiResponse(gnt=self.grant_to(m), rvalid=rvalid, rdata=rdata)
            )
        return out
