"""Algorithm 2: the unrolled UPEC-SSC procedure (Sec. 3.5).

The 2-cycle property folds all multi-cycle behaviour into the symbolic
starting state, which makes counterexamples "cryptic" — divergence shows
up as inexplicable start-state differences.  Algorithm 2 instead unrolls
the property cycle by cycle with a per-cycle vector of state sets
``S[0..k]``, producing explicit traces: this is how the paper exposes the
delayed HWPE access of the new BUSted variant (k = 2, Sec. 4.1).

Termination of the unrolling returns ``hold`` — *not* ``secure``: a
final inductive proof (Algorithm 1 seeded with ``S[k]``) is still
required, because influence could resume at a later cycle.

The whole procedure — every iteration at every depth ``k``, plus the
final inductive Algorithm 1 run — drives **one** incremental
:class:`~repro.upec.miter.MiterSession`: deepening the unrolling
extends the encoded prefix in place and each iteration is a
``solve(assumptions)`` call reusing all previously learned clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .classify import StateClassifier
from .miter import CheckStats, MiterCounterexample, UpecMiter
from .ssc import IterationRecord, SscResult, seedable_removals, upec_ssc
from .threat_model import ThreatModel

__all__ = ["UnrolledResult", "upec_ssc_unrolled"]


@dataclass
class UnrolledResult:
    """Outcome of Algorithm 2.

    ``verdict`` is ``"hold"``, ``"vulnerable"``, or — when the final
    inductive proof was requested and succeeded — ``"secure"``.
    """

    verdict: str
    reached_depth: int
    iterations: list[IterationRecord] = field(default_factory=list)
    s_frames: list[set[str]] = field(default_factory=list)
    leaking: set[str] = field(default_factory=set)
    counterexample: MiterCounterexample | None = None
    inductive_result: SscResult | None = None
    #: Names dropped from the starting frames by an injected seed (see
    #: ``seed_removed`` of :func:`upec_ssc_unrolled`).
    seeded_removed: set[str] = field(default_factory=set)

    @property
    def vulnerable(self) -> bool:
        return self.verdict == "vulnerable"

    def removed_transients(self) -> set[str]:
        """Union of all transient removals across frames (campaign hint)."""
        out = set(self.seeded_removed)
        for rec in self.iterations:
            out |= rec.removed
        return out

    def rollup_stats(self) -> CheckStats:
        """All iterations' costs folded into one :class:`CheckStats`."""
        total = CheckStats()
        for rec in self.iterations:
            total.add(rec.stats)
        return total

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return {
            "verdict": self.verdict,
            "reached_depth": self.reached_depth,
            "iterations": [rec.to_dict() for rec in self.iterations],
            "s_frames": [sorted(frame) for frame in self.s_frames],
            "leaking": sorted(self.leaking),
            "counterexample": (
                self.counterexample.to_dict() if self.counterexample else None
            ),
            "inductive_result": (
                self.inductive_result.to_dict()
                if self.inductive_result else None
            ),
            "seeded_removed": sorted(self.seeded_removed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnrolledResult":
        """Rebuild from :meth:`to_dict` output."""
        cex = data.get("counterexample")
        inductive = data.get("inductive_result")
        return cls(
            verdict=data["verdict"],
            reached_depth=data["reached_depth"],
            iterations=[IterationRecord.from_dict(r)
                        for r in data["iterations"]],
            s_frames=[set(frame) for frame in data["s_frames"]],
            leaking=set(data["leaking"]),
            counterexample=(
                MiterCounterexample.from_dict(cex) if cex else None
            ),
            inductive_result=(
                SscResult.from_dict(inductive) if inductive else None
            ),
            seeded_removed=set(data.get("seeded_removed", ())),
        )


def upec_ssc_unrolled(
    threat_model: ThreatModel,
    classifier: StateClassifier | None = None,
    max_depth: int = 16,
    max_iterations: int = 1000,
    inductive_final: bool = True,
    record_trace: bool = True,
    incremental: bool = True,
    initial_s: set[str] | None = None,
    seed_removed: set[str] | None = None,
    preprocess=None,
    backend: str | None = None,
) -> UnrolledResult:
    """Run Algorithm 2 on a design.

    Args:
        threat_model: the design plus threat-model specification.
        classifier: S_pers decision rules.
        max_depth: largest unrolling ``k`` to attempt.
        max_iterations: global iteration safety bound.
        inductive_final: after ``hold``, run Algorithm 1 with
            ``S <- S[k]`` to upgrade the verdict to ``secure`` (the
            paper's required "additional inductive proof").
        record_trace: decode full counterexample traces.
        incremental: share one miter session across all depths and the
            final inductive proof (default); False rebuilds per check.
        initial_s: override the starting frame sets (defaults to
            ``S_not_victim``).
        seed_removed: a hint from a related run (campaign hint cache):
            names to drop from the starting frames up front, filtered
            through :func:`repro.upec.ssc.seedable_removals` so only
            locally transient variables are stripped.
        preprocess: a :class:`~repro.sat.preprocess.PreprocessConfig`
            (or bool/dict) selecting the reduction pipeline — most
            importantly the intermediate-frame substitution that keeps
            the k >= 2 obligations small.  The verdict trajectory is
            identical with preprocessing on or off.

    Returns:
        Verdict plus the evolved ``S[]`` vector and per-iteration records;
        on ``vulnerable`` the multi-cycle counterexample trace shows every
        signal explicitly.
    """
    classifier = classifier or StateClassifier(threat_model)
    miter = UpecMiter(threat_model, classifier, incremental=incremental,
                      preprocess=preprocess, backend=backend)
    s_start = (set(initial_s) if initial_s is not None
               else classifier.s_not_victim())
    seeded: set[str] = set()
    if seed_removed:
        seeded = seedable_removals(classifier, s_start, seed_removed)
        s_start -= seeded
    s_frames: list[set[str]] = [set(s_start), set(s_start)]
    k = 1
    iterations: list[IterationRecord] = []
    for index in range(1, max_iterations + 1):
        cex = miter.check(s_frames, record_trace=record_trace)
        if cex is None:
            if s_frames[k] == s_frames[k - 1]:
                inductive = None
                verdict = "hold"
                if inductive_final:
                    inductive = upec_ssc(
                        threat_model,
                        classifier,
                        initial_s=set(s_frames[k]),
                        record_trace=record_trace,
                        miter=miter,
                    )
                    verdict = inductive.verdict
                    if inductive.vulnerable:
                        return UnrolledResult(
                            verdict="vulnerable",
                            reached_depth=k,
                            iterations=iterations + inductive.iterations,
                            s_frames=s_frames,
                            leaking=inductive.leaking,
                            counterexample=inductive.counterexample,
                            inductive_result=inductive,
                            seeded_removed=seeded,
                        )
                return UnrolledResult(
                    verdict=verdict,
                    reached_depth=k,
                    iterations=iterations,
                    s_frames=s_frames,
                    inductive_result=inductive,
                    seeded_removed=seeded,
                )
            if k + 1 > max_depth:
                return UnrolledResult(
                    verdict="hold",
                    reached_depth=k,
                    iterations=iterations,
                    s_frames=s_frames,
                    seeded_removed=seeded,
                )
            k += 1
            s_frames.append(set(s_frames[k - 1]))
            continue
        persistent, transient = classifier.split_by_persistence(cex.diff_names)
        iterations.append(
            IterationRecord(
                index=index,
                s_size=len(s_frames[k]),
                diff_names=set(cex.diff_names),
                removed=set() if persistent else set(transient),
                persistent_hits=set(persistent),
                stats=cex.stats,
                unroll_depth=k,
            )
        )
        if persistent:
            return UnrolledResult(
                verdict="vulnerable",
                reached_depth=k,
                iterations=iterations,
                s_frames=s_frames,
                leaking=persistent,
                counterexample=cex,
                seeded_removed=seeded,
            )
        s_frames[k] -= transient
    raise RuntimeError(
        f"unrolled UPEC-SSC did not converge within {max_iterations} iterations"
    )
