"""Algorithm 1: the UPEC-SSC procedure.

Iteratively shrinks the set ``S`` of state variables assumed (and proven)
equal between the two miter instances:

1. ``S <- S_not_victim``;
2. check the 2-cycle property ``UPEC-SSC(S)`` (Fig. 3);
3. if it holds — ``S`` has reached a fixed point: the property is the
   induction step proving the victim can *never* influence ``S``, hence
   nothing persistent, hence **secure**;
4. if the counterexample ``S_cex`` intersects ``S_pers`` — information
   about the victim reaches attacker-retrievable state: **vulnerable**;
5. otherwise remove ``S_cex`` from ``S`` (those variables may carry
   victim information, but cannot hold it across a context switch) and
   repeat.

The whole loop drives **one** incremental
:class:`~repro.upec.miter.MiterSession`: the miter is encoded once,
every iteration is a ``solve(assumptions)`` call reusing the learned
clauses of its predecessors, and ``check`` returns the canonical
can-diverge closure, so the loop removes *every* divergence-capable
transient variable per iteration and converges in a handful of steps.
The trajectory (verdict, ``final_s``, leaking set) is identical to a
per-iteration rebuild (``incremental=False``) by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .classify import StateClassifier, UnclassifiedStateError
from .miter import CheckStats, MiterCounterexample, UpecMiter
from .threat_model import ThreatModel

__all__ = ["IterationRecord", "SscResult", "seedable_removals", "upec_ssc"]


def seedable_removals(
    classifier: StateClassifier, s: set[str], seed_removed: set[str]
) -> set[str]:
    """The subset of ``seed_removed`` that may soundly be dropped from ``s``.

    A hint from a related configuration may only strip variables that (a)
    exist in this design's starting set and (b) are classified *transient*
    here — removing a transient variable weakens the assumptions, so a
    ``secure`` fixed point remains sound; persistent or unclassified names
    are kept so the vulnerability test is never diluted.
    """
    dropped: set[str] = set()
    for name in set(seed_removed) & s:
        try:
            if not classifier.in_s_pers(name):
                dropped.add(name)
        except UnclassifiedStateError:
            continue
    return dropped


@dataclass
class IterationRecord:
    """Bookkeeping for one while-loop iteration of Algorithm 1/2."""

    index: int
    s_size: int
    diff_names: set[str]
    removed: set[str]
    persistent_hits: set[str]
    stats: CheckStats
    unroll_depth: int = 1

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return {
            "index": self.index,
            "s_size": self.s_size,
            "diff_names": sorted(self.diff_names),
            "removed": sorted(self.removed),
            "persistent_hits": sorted(self.persistent_hits),
            "stats": self.stats.to_dict(),
            "unroll_depth": self.unroll_depth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            index=data["index"],
            s_size=data["s_size"],
            diff_names=set(data["diff_names"]),
            removed=set(data["removed"]),
            persistent_hits=set(data["persistent_hits"]),
            stats=CheckStats.from_dict(data["stats"]),
            unroll_depth=data.get("unroll_depth", 1),
        )


@dataclass
class SscResult:
    """Outcome of the UPEC-SSC procedure.

    ``verdict`` is ``"secure"`` or ``"vulnerable"`` (Alg. 1 always
    terminates: ``S`` shrinks strictly while no persistent state is hit).
    """

    verdict: str
    iterations: list[IterationRecord] = field(default_factory=list)
    final_s: set[str] = field(default_factory=set)
    leaking: set[str] = field(default_factory=set)
    counterexample: MiterCounterexample | None = None
    #: Names dropped from the starting set by an injected seed (see
    #: ``seed_removed`` of :func:`upec_ssc`); empty for unseeded runs.
    seeded_removed: set[str] = field(default_factory=set)

    @property
    def secure(self) -> bool:
        return self.verdict == "secure"

    @property
    def vulnerable(self) -> bool:
        return self.verdict == "vulnerable"

    def total_solve_seconds(self) -> float:
        """Aggregate SAT time across all iterations."""
        return sum(r.stats.solve_seconds for r in self.iterations)

    def total_encode_seconds(self) -> float:
        """Aggregate AIG/CNF encoding time across all iterations."""
        return sum(r.stats.encode_seconds for r in self.iterations)

    def removed_transients(self) -> set[str]:
        """Union of all transient removals — the hint a later related
        run can seed its starting set with."""
        out = set(self.seeded_removed)
        for rec in self.iterations:
            out |= rec.removed
        return out

    def rollup_stats(self) -> CheckStats:
        """All iterations' costs folded into one :class:`CheckStats`."""
        total = CheckStats()
        for rec in self.iterations:
            total.add(rec.stats)
        return total

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return {
            "verdict": self.verdict,
            "iterations": [rec.to_dict() for rec in self.iterations],
            "final_s": sorted(self.final_s),
            "leaking": sorted(self.leaking),
            "counterexample": (
                self.counterexample.to_dict() if self.counterexample else None
            ),
            "seeded_removed": sorted(self.seeded_removed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SscResult":
        """Rebuild from :meth:`to_dict` output."""
        cex = data.get("counterexample")
        return cls(
            verdict=data["verdict"],
            iterations=[IterationRecord.from_dict(r)
                        for r in data["iterations"]],
            final_s=set(data["final_s"]),
            leaking=set(data["leaking"]),
            counterexample=(
                MiterCounterexample.from_dict(cex) if cex else None
            ),
            seeded_removed=set(data.get("seeded_removed", ())),
        )


def upec_ssc(
    threat_model: ThreatModel,
    classifier: StateClassifier | None = None,
    initial_s: set[str] | None = None,
    max_iterations: int = 1000,
    record_trace: bool = True,
    incremental: bool = True,
    miter: UpecMiter | None = None,
    seed_removed: set[str] | None = None,
    preprocess=None,
    backend: str | None = None,
) -> SscResult:
    """Run Algorithm 1 on a design.

    Args:
        threat_model: the design plus its threat-model specification.
        classifier: S_pers decision rules (default heuristics per Sec. 3.4).
        initial_s: override the starting set (used for the final inductive
            proof after Algorithm 2 returns ``hold``, with ``S <- S[k]``).
        max_iterations: safety bound; Alg. 1 terminates on its own because
            ``S`` shrinks strictly in every non-terminal iteration.
        record_trace: decode full counterexample traces (disable to save
            time in sweeps).
        incremental: drive one persistent miter session (default); with
            False every iteration rebuilds from scratch — the ablation
            baseline, bit-identical in results but slower.
        miter: reuse an existing miter/session (Algorithm 2 passes its
            own so the final inductive proof keeps the learned clauses).
        seed_removed: a hint from a related run (campaign hint cache):
            names to drop from the starting set up front, filtered
            through :func:`seedable_removals` so only locally transient
            variables are stripped.  The dropped names are recorded on
            the result as ``seeded_removed``.
        preprocess: a :class:`~repro.sat.preprocess.PreprocessConfig`
            (or bool/dict) selecting the reduction pipeline the miter
            session runs between encoding and SAT search; the verdict
            trajectory is identical either way.  Ignored when an
            existing ``miter`` is passed (its configuration wins).

    Returns:
        The verdict with per-iteration statistics; on ``vulnerable`` the
        counterexample and the leaking persistent variables are included.
    """
    classifier = classifier or (miter.classifier if miter is not None
                                else StateClassifier(threat_model))
    if miter is None:
        miter = UpecMiter(threat_model, classifier, incremental=incremental,
                          preprocess=preprocess, backend=backend)
    s = set(initial_s) if initial_s is not None else classifier.s_not_victim()
    seeded: set[str] = set()
    if seed_removed:
        seeded = seedable_removals(classifier, s, seed_removed)
        s -= seeded
    iterations: list[IterationRecord] = []
    for index in range(1, max_iterations + 1):
        cex = miter.check([s, s], record_trace=record_trace)
        if cex is None:
            # Fixed point: UPEC-SSC(S) is now the induction step (base: the
            # victim has influenced nothing before first touching the
            # CPU/system interface), so the design is secure w.r.t. the
            # threat model.
            iterations.append(
                IterationRecord(
                    index=index,
                    s_size=len(s),
                    diff_names=set(),
                    removed=set(),
                    persistent_hits=set(),
                    stats=CheckStats(),
                )
            )
            return SscResult(verdict="secure", iterations=iterations,
                             final_s=s, seeded_removed=seeded)
        persistent, transient = classifier.split_by_persistence(cex.diff_names)
        iterations.append(
            IterationRecord(
                index=index,
                s_size=len(s),
                diff_names=set(cex.diff_names),
                removed=set() if persistent else set(transient),
                persistent_hits=set(persistent),
                stats=cex.stats,
            )
        )
        if persistent:
            return SscResult(
                verdict="vulnerable",
                iterations=iterations,
                final_s=s,
                leaking=persistent,
                counterexample=cex,
                seeded_removed=seeded,
            )
        s -= transient
    raise RuntimeError(
        f"UPEC-SSC did not converge within {max_iterations} iterations"
    )
