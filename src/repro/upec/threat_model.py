"""Threat-model specification for UPEC-SSC (Sec. 2.1 and 3.3 of the paper).

The threat model fixes *what is confidential* and *what the attacker can
touch*:

* The victim task executes on the (single-threaded) CPU; its accesses to
  a **protected address range** are the confidential information, along
  with the memory content of that range.
* The protected range is **symbolic**: a free page index shared between
  both miter instances and stable over time, so one proof covers every
  possible victim memory layout ("the address ranges allocated to the
  victim task are modeled symbolically").
* Per Obs. 1, the CPU is cut out of the formal model and its bus master
  port becomes free pseudo-inputs, constrained by the
  ``Victim_Task_Executing()`` macro (see :mod:`repro.upec.macros`).
* Spying IPs cannot directly address the protected range (threat-model
  restriction from Sec. 3.3), expressed as assumptions on the other
  masters' request addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.circuit import Circuit
from ..rtl.expr import Expr, Input, implies

__all__ = ["VictimPort", "ThreatModel"]


@dataclass
class VictimPort:
    """Input names of the cut CPU master interface (request side).

    The response side (grant, read data) needs no declaration: with the
    CPU removed nothing consumes it.

    Attributes:
        valid: 1-bit request-valid input name.
        addr: address input name.
        write: 1-bit write-enable input name.
        wdata: write-data input name.
    """

    valid: str
    addr: str
    write: str
    wdata: str

    def fields(self) -> list[str]:
        """All input names of the interface, valid first."""
        return [self.valid, self.addr, self.write, self.wdata]


@dataclass
class ThreatModel:
    """Everything the UPEC-SSC miter needs to know about a design.

    Attributes:
        circuit: the formal netlist (CPU already cut).
        victim_port: the cut CPU master interface.
        victim_page: name of the symbolic protected-page input.  The
            protected range is the set of addresses whose upper bits equal
            this page index — one aligned page of ``2**page_bits`` words.
        page_bits: log2 of the protected-range size in words.
        secret_arrays: register-file arrays whose words are *conditionally
            confidential*, mapped to the bus base address of word 0.  A
            word is secret iff its bus address falls inside the protected
            page (per-word guard, computed symbolically).
        spy_master_ports: (valid_net, addr_net) pairs for every non-CPU
            master; the threat model assumes they never address the
            protected page.
        stable_input_names: inputs treated as symbolic *constants*: shared
            between instances and across all frames (the victim page, any
            configuration straps).
        firmware_constraints: 1-bit expressions assumed at every cycle in
            both instances — the "set of legal configurations ... compiled
            as a set of firmware constraints" of the countermeasure
            (Sec. 4.2).
        invariants: 1-bit expressions assumed at cycle ``t`` to exclude
            unreachable symbolic start states (Sec. 3.4); prove them first
            with :func:`repro.formal.prove_invariant`.
        victim_page_constraint: optional 1-bit expression restricting the
            symbolic page (the countermeasure maps the security-critical
            region into private memory by constraining this).
    """

    circuit: Circuit
    victim_port: VictimPort
    victim_page: str
    page_bits: int
    secret_arrays: dict[str, int] = field(default_factory=dict)
    spy_master_ports: list[tuple[str, str]] = field(default_factory=list)
    stable_input_names: set[str] = field(default_factory=set)
    firmware_constraints: list[Expr] = field(default_factory=list)
    invariants: list[Expr] = field(default_factory=list)
    victim_page_constraint: Expr | None = None

    def __post_init__(self) -> None:
        inputs = self.circuit.inputs
        for name in self.victim_port.fields():
            if name not in inputs:
                raise ValueError(f"victim port input {name!r} not in circuit")
        if self.victim_page not in inputs:
            raise ValueError(f"victim page input {self.victim_page!r} not in circuit")
        self.stable_input_names = set(self.stable_input_names)
        self.stable_input_names.add(self.victim_page)
        for array in self.secret_arrays:
            if not any(
                info.meta.array == array for info in self.circuit.regs.values()
            ):
                raise ValueError(f"secret array {array!r} has no word registers")

    # -- derived expressions -------------------------------------------------

    @property
    def addr_width(self) -> int:
        """Bus address width of the victim interface."""
        return self.circuit.inputs[self.victim_port.addr].width

    @property
    def page_input(self) -> Input:
        """The symbolic protected-page input node."""
        return self.circuit.inputs[self.victim_page]

    def page_of(self, addr: Expr) -> Expr:
        """Upper address bits selecting the page of ``addr``."""
        if addr.width != self.addr_width:
            raise ValueError(
                f"address width {addr.width} != interface width {self.addr_width}"
            )
        return addr[self.addr_width - 1 : self.page_bits]

    def in_protected_range(self, addr: Expr) -> Expr:
        """1-bit expression: ``addr`` lies in the symbolic protected page."""
        return self.page_of(addr).eq(self.page_input)

    def word_is_secret(self, array: str, index: int) -> Expr:
        """Guard: word ``index`` of ``array`` lies in the protected page.

        This is the symbolic-address-range modelling of Sec. 3.4: whether
        a concrete memory word belongs to the victim is itself a symbolic
        predicate over the free page index.
        """
        base = self.secret_arrays[array]
        word_addr = base + index
        page = word_addr >> self.page_bits
        page_width = self.addr_width - self.page_bits
        return self.page_input.eq(page & ((1 << page_width) - 1))

    def spy_isolation_constraints(self) -> list[Expr]:
        """Assumptions: no non-CPU master addresses the protected page."""
        out = []
        for valid_name, addr_name in self.spy_master_ports:
            valid = self._net_or_input(valid_name)
            addr = self._net_or_input(addr_name)
            out.append(implies(valid, ~self.in_protected_range(addr)))
        return out

    def _net_or_input(self, name: str) -> Expr:
        if name in self.circuit.nets:
            return self.circuit.nets[name]
        if name in self.circuit.inputs:
            return self.circuit.inputs[name]
        raise KeyError(f"no net or input named {name!r}")
