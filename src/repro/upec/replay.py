"""Replay of 2-safety counterexamples on the concrete simulator.

A UPEC-SSC counterexample is a pair of traces decoded from a SAT model.
This module re-executes both traces on the cycle-accurate simulator
(:mod:`repro.sim`) — starting from the trace's symbolic-start register
values and driving its input valuations — and checks that every register
evolves exactly as the trace claims.

This closes the loop between the two independent semantics in this
repository (bit-blasted transition relation vs. simulator): every
counterexample the formal engine reports is *concretely executable* on
the RTL.  Note that IPC start states are symbolic, so replay validates
transition-consistency, not reachability from reset — exactly the
guarantee the method itself provides (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.circuit import Circuit
from ..sim.simulator import Simulator
from .miter import MiterCounterexample

__all__ = ["ReplayReport", "replay_counterexample"]


@dataclass
class ReplayReport:
    """Outcome of replaying both instances of a counterexample.

    ``mismatches`` lists (instance, cycle, register, simulated, trace)
    tuples; an empty list means the counterexample is consistent with
    the RTL's concrete semantics.
    """

    ok: bool
    cycles_checked: int
    mismatches: list[tuple[str, int, str, int, int]] = field(
        default_factory=list
    )

    def format_report(self) -> str:
        """One-line verdict plus any mismatch details."""
        if self.ok:
            return (
                f"counterexample replayed concretely over "
                f"{self.cycles_checked} cycle(s): consistent"
            )
        lines = [f"REPLAY MISMATCHES ({len(self.mismatches)}):"]
        for instance, cycle, name, simulated, trace in self.mismatches[:20]:
            lines.append(
                f"  [{instance}] cycle {cycle}: {name} "
                f"sim={simulated:#x} trace={trace:#x}"
            )
        return "\n".join(lines)


def replay_counterexample(
    circuit: Circuit, cex: MiterCounterexample
) -> ReplayReport:
    """Replay both instances of ``cex`` on the simulator.

    Requires a formal-configuration circuit (register-file memories) and
    a counterexample recorded with traces (``record_trace=True``).
    """
    mismatches: list[tuple[str, int, str, int, int]] = []
    for instance, trace in (("A", cex.trace_a), ("B", cex.trace_b)):
        if not any(trace.cycles):
            raise ValueError(
                "counterexample has no recorded trace; run the check with "
                "record_trace=True"
            )
        sim = Simulator(circuit, backend="compile")
        for name in circuit.regs:
            sim.poke(name, trace.value(0, name))
        for t in range(cex.frame):
            inputs = {
                name: trace.value(t, name) for name in circuit.inputs
            }
            sim.step(inputs)
            for name in circuit.regs:
                simulated = sim.peek(name)
                expected = trace.value(t + 1, name)
                if simulated != expected:
                    mismatches.append(
                        (instance, t + 1, name, simulated, expected)
                    )
    return ReplayReport(
        ok=not mismatches,
        cycles_checked=cex.frame,
        mismatches=mismatches,
    )
