"""Human-readable reports for UPEC-SSC results.

Renders verdicts, per-iteration statistics and side-by-side 2-safety
counterexample traces — the artifacts a verification engineer uses to
debug a detected timing side channel (Sec. 4.1 of the paper walks
through exactly such a counterexample).
"""

from __future__ import annotations

from .classify import StateClassifier
from .miter import MiterCounterexample
from .ssc import IterationRecord, SscResult
from .unrolled import UnrolledResult

__all__ = ["format_iterations", "format_counterexample", "format_result"]


def format_iterations(iterations: list[IterationRecord]) -> str:
    """Render the Algorithm 1/2 iteration history as a text table.

    ``encode[s]`` vs ``solve[s]`` separates AIG/CNF construction from
    SAT search; ``reuse`` is the learned-clause pool retained from
    earlier checks of the same incremental session (0 = cold solver).
    """
    header = (
        f"{'iter':>4} {'k':>2} {'|S|':>6} {'#diff':>6} {'removed':>8} "
        f"{'pers-hit':>8} {'encode[s]':>9} {'solve[s]':>9} {'calls':>5} "
        f"{'conflicts':>9} {'reuse':>6}"
    )
    lines = [header, "-" * len(header)]
    for rec in iterations:
        lines.append(
            f"{rec.index:>4} {rec.unroll_depth:>2} {rec.s_size:>6} "
            f"{len(rec.diff_names):>6} {len(rec.removed):>8} "
            f"{len(rec.persistent_hits):>8} {rec.stats.encode_seconds:>9.3f} "
            f"{rec.stats.solve_seconds:>9.3f} {rec.stats.sat_calls:>5} "
            f"{rec.stats.conflicts:>9} {rec.stats.learned_kept:>6}"
        )
    return "\n".join(lines)


def format_counterexample(
    cex: MiterCounterexample,
    classifier: StateClassifier | None = None,
    max_signals: int = 40,
) -> str:
    """Render a 2-safety counterexample: diverging state + paired traces."""
    lines = [
        f"counterexample at cycle t+{cex.frame} "
        f"(victim page = {cex.victim_page:#x})",
        "",
        "diverging state variables (S_cex):",
    ]
    for name in sorted(cex.diff_names):
        description = classifier.describe(name) if classifier else name
        lines.append(f"  {description}")
    differing = cex.differing_signals()
    shown = differing[:max_signals]
    lines.append("")
    lines.append(f"signals differing between instances ({len(differing)} total):")
    lines.append("")
    lines.append("--- instance A (victim performs protected accesses) ---")
    lines.append(cex.trace_a.format_table(shown))
    lines.append("")
    lines.append("--- instance B (alternative victim behaviour) ---")
    lines.append(cex.trace_b.format_table(shown))
    return "\n".join(lines)


def format_result(
    result: SscResult | UnrolledResult,
    classifier: StateClassifier | None = None,
) -> str:
    """Render a full procedure outcome."""
    lines = [f"UPEC-SSC verdict: {result.verdict.upper()}"]
    if isinstance(result, UnrolledResult):
        lines.append(f"unrolled depth reached: k = {result.reached_depth}")
    lines.append("")
    lines.append(format_iterations(result.iterations))
    stats = [rec.stats for rec in result.iterations]
    if stats:
        encode = sum(s.encode_seconds for s in stats)
        solve = sum(s.solve_seconds for s in stats)
        reused = max(s.learned_kept for s in stats)
        lines.append(
            f"totals: encode {encode:.3f} s, solve {solve:.3f} s, "
            f"{sum(s.sat_calls for s in stats)} solver calls, "
            f"up to {reused} learned clauses reused across checks"
        )
    if result.leaking:
        lines.append("")
        lines.append("persistent state reached by victim-dependent information:")
        for name in sorted(result.leaking):
            description = classifier.describe(name) if classifier else name
            lines.append(f"  {description}")
    cex = getattr(result, "counterexample", None)
    if cex is not None:
        lines.append("")
        lines.append(format_counterexample(cex, classifier))
    return "\n".join(lines)
