"""Human-readable reports for UPEC-SSC results.

Renders verdicts, per-iteration statistics and side-by-side 2-safety
counterexample traces — the artifacts a verification engineer uses to
debug a detected timing side channel (Sec. 4.1 of the paper walks
through exactly such a counterexample).
"""

from __future__ import annotations

from .classify import StateClassifier
from .miter import CheckStats, MiterCounterexample
from .ssc import IterationRecord, SscResult
from .unrolled import UnrolledResult

__all__ = [
    "format_iterations",
    "format_counterexample",
    "format_result",
    "format_verdict",
    "format_job_line",
    "format_campaign",
    "campaign_summary",
    "format_diagnosis_line",
    "format_repair_report",
    "format_repair_campaign",
    "format_fabric_status",
]


def format_iterations(iterations: list[IterationRecord]) -> str:
    """Render the Algorithm 1/2 iteration history as a text table.

    ``encode[s]`` vs ``solve[s]`` separates AIG/CNF construction from
    SAT search; ``reuse`` is the learned-clause pool retained from
    earlier checks of the same incremental session (0 = cold solver).
    """
    header = (
        f"{'iter':>4} {'k':>2} {'|S|':>6} {'#diff':>6} {'removed':>8} "
        f"{'pers-hit':>8} {'encode[s]':>9} {'solve[s]':>9} {'calls':>5} "
        f"{'conflicts':>9} {'reuse':>6}"
    )
    lines = [header, "-" * len(header)]
    for rec in iterations:
        lines.append(
            f"{rec.index:>4} {rec.unroll_depth:>2} {rec.s_size:>6} "
            f"{len(rec.diff_names):>6} {len(rec.removed):>8} "
            f"{len(rec.persistent_hits):>8} {rec.stats.encode_seconds:>9.3f} "
            f"{rec.stats.solve_seconds:>9.3f} {rec.stats.sat_calls:>5} "
            f"{rec.stats.conflicts:>9} {rec.stats.learned_kept:>6}"
        )
    return "\n".join(lines)


def format_counterexample(
    cex: MiterCounterexample,
    classifier: StateClassifier | None = None,
    max_signals: int = 40,
) -> str:
    """Render a 2-safety counterexample: diverging state + paired traces."""
    lines = [
        f"counterexample at cycle t+{cex.frame} "
        f"(victim page = {cex.victim_page:#x})",
        "",
        "diverging state variables (S_cex):",
    ]
    for name in sorted(cex.diff_names):
        description = classifier.describe(name) if classifier else name
        lines.append(f"  {description}")
    differing = cex.differing_signals()
    shown = differing[:max_signals]
    lines.append("")
    lines.append(f"signals differing between instances ({len(differing)} total):")
    lines.append("")
    lines.append("--- instance A (victim performs protected accesses) ---")
    lines.append(cex.trace_a.format_table(shown))
    lines.append("")
    lines.append("--- instance B (alternative victim behaviour) ---")
    lines.append(cex.trace_b.format_table(shown))
    return "\n".join(lines)


def format_result(
    result: SscResult | UnrolledResult,
    classifier: StateClassifier | None = None,
) -> str:
    """Render a full procedure outcome."""
    lines = [f"UPEC-SSC verdict: {result.verdict.upper()}"]
    if isinstance(result, UnrolledResult):
        lines.append(f"unrolled depth reached: k = {result.reached_depth}")
    lines.append("")
    lines.append(format_iterations(result.iterations))
    stats = [rec.stats for rec in result.iterations]
    if stats:
        encode = sum(s.encode_seconds for s in stats)
        solve = sum(s.solve_seconds for s in stats)
        reused = max(s.learned_kept for s in stats)
        lines.append(
            f"totals: encode {encode:.3f} s, solve {solve:.3f} s, "
            f"{sum(s.sat_calls for s in stats)} solver calls, "
            f"up to {reused} learned clauses reused across checks"
        )
    if result.leaking:
        lines.append("")
        lines.append("persistent state reached by victim-dependent information:")
        for name in sorted(result.leaking):
            description = classifier.describe(name) if classifier else name
            lines.append(f"  {description}")
    cex = getattr(result, "counterexample", None)
    if cex is not None:
        lines.append("")
        lines.append(format_counterexample(cex, classifier))
    return "\n".join(lines)


def format_verdict(verdict, classifier: StateClassifier | None = None) -> str:
    """Render a unified :class:`repro.verify.Verdict`.

    Shows the unified status with its provenance line (design
    fingerprint, method, depth), the method's native verdict, cost
    totals, the leaking set, and — for Algorithm 1/2 — the iteration
    table and counterexample the legacy reports showed.
    """
    p = verdict.provenance
    lines = [
        f"verdict: {verdict.status}"
        + (f"  (native: {verdict.raw_verdict})"
           if verdict.raw_verdict.upper() != verdict.status else "")
        + ("  [cached]" if verdict.cached else ""),
        f"method: {verdict.method}"
        + (f" @ depth {p['depth']}" if p.get("depth") is not None else ""),
    ]
    if p.get("design_fingerprint"):
        lines.append(f"design: {p['design_fingerprint']}")
    stats = verdict.stats
    lines.append(
        f"cost: {verdict.seconds:.1f} s wall "
        f"(encode {stats.encode_seconds:.1f} s, "
        f"preprocess {stats.preprocess_s:.1f} s, "
        f"solve {stats.solve_seconds:.1f} s, "
        f"{stats.sat_calls} solver calls)"
    )
    reductions = []
    if stats.candidates_pruned_by_sim:
        reductions.append(
            f"{stats.candidates_pruned_by_sim} candidate(s) answered by "
            f"simulation"
        )
    if stats.vars_eliminated:
        reductions.append(f"{stats.vars_eliminated} variables eliminated")
    if stats.clauses_subsumed:
        reductions.append(f"{stats.clauses_subsumed} clauses subsumed")
    if reductions:
        lines.append("reductions: " + ", ".join(reductions))
    if stats.solver_starts or stats.clauses_shipped:
        shipping = (
            f"external solving: {stats.solver_starts} solver start(s), "
            f"{stats.clauses_shipped} clause(s) shipped"
        )
        if stats.cores_overapprox:
            shipping += (f", {stats.cores_overapprox} over-approximate "
                         f"core(s)")
        lines.append(shipping)
    if stats.winner_lane:
        lines.append(
            f"portfolio: {stats.winner_lane} won, "
            f"{stats.lanes_cancelled} lane(s) cancelled "
            f"({stats.race_wall_s:.1f} s race wall)"
        )
    if verdict.seeded:
        lines.append(f"seeded: {len(verdict.seeded)} name(s)"
                     + (" — reran unseeded to confirm"
                        if verdict.reran_unseeded else ""))
    if verdict.leaking:
        lines.append("")
        lines.append("victim-dependent information reaches:")
        for name in sorted(verdict.leaking):
            description = classifier.describe(name) if classifier else name
            lines.append(f"  {description}")
    result = verdict.result_object()
    if result is not None:
        lines.append("")
        lines.append(format_iterations(result.iterations))
        if result.counterexample is not None:
            lines.append("")
            lines.append(format_counterexample(result.counterexample,
                                               classifier))
    elif verdict.error:
        lines.append("")
        lines.append(f"error: {verdict.error.splitlines()[-1]}")
    return "\n".join(lines)


# -- campaign-level aggregation ---------------------------------------------
#
# These functions take the job results of a campaign run
# (:class:`repro.campaign.runner.JobResult` — duck-typed here so the
# report layer stays below the campaign subsystem): objects with ``job``
# (variant / threat / algorithm / depth / label()), ``verdict``,
# ``seconds``, ``stats`` (:class:`CheckStats`) and ``detail``.


def _columns(results) -> list[tuple[str, int]]:
    """Ordered (algorithm, depth) column axis of a campaign."""
    seen: list[tuple[str, int]] = []
    for r in results:
        key = (r.job.algorithm, r.job.depth)
        if key not in seen:
            seen.append(key)
    return seen


def _column_name(algorithm: str, depth: int, columns) -> str:
    """Column caption: the depth qualifier appears only when the
    campaign actually ran the algorithm at several depths (shared by the
    text matrix and the JSON summary so their keys line up)."""
    depths = {d for a, d in columns if a == algorithm}
    return f"{algorithm}@k{depth}" if len(depths) > 1 else algorithm


def _row_name(variant: str, threat: str) -> str:
    return variant if threat == "default" else f"{variant}/{threat}"


def _job_iterations(result) -> int | None:
    detail = result.detail.get("result") if result.detail else None
    if detail and "iterations" in detail:
        return len(detail["iterations"])
    return None


def format_job_line(result) -> str:
    """One streaming progress line for a completed campaign job."""
    extras = []
    if getattr(result, "cached", False):
        extras.append("cached")
    iterations = _job_iterations(result)
    if iterations is not None:
        extras.append(f"{iterations} iters")
    if result.seeded:
        extras.append(f"seeded({len(result.seeded)})")
    if result.reran_unseeded:
        extras.append("reran-unseeded")
    if result.stats.candidates_pruned_by_sim:
        extras.append(f"sim-pruned({result.stats.candidates_pruned_by_sim})")
    if result.stats.winner_lane:
        extras.append(f"portfolio: {result.stats.winner_lane} won, "
                      f"{result.stats.lanes_cancelled} cancelled")
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    return (
        f"[{result.job.index:>3}] {result.job.label():<36} "
        f"{result.verdict.upper():<12} {result.seconds:>7.1f}s{suffix}"
    )


def format_campaign(results, title: str | None = None) -> str:
    """Render a campaign's verdict matrix and cost rollups.

    Rows are (variant, threat model) combinations, columns the
    (algorithm, depth) axis; each cell shows the verdict (plus the
    Algorithm 1/2 iteration count).  Totals aggregate wall-clock and
    :class:`CheckStats` across all jobs.
    """
    results = list(results)
    columns = _columns(results)
    rows: list[tuple[str, str]] = []
    for r in results:
        key = (r.job.variant, r.job.threat)
        if key not in rows:
            rows.append(key)

    cells: dict[tuple, str] = {}
    for r in results:
        text = r.verdict.upper()
        iterations = _job_iterations(r)
        if iterations is not None and r.verdict not in ("timeout", "error"):
            text += f" ({iterations})"
        cells[(r.job.variant, r.job.threat,
               r.job.algorithm, r.job.depth)] = text

    headers = [_column_name(a, d, columns) for a, d in columns]
    row_width = max([len(_row_name(*row)) for row in rows] + [len("variant")])
    col_widths = [
        max([len(h)] + [
            len(cells.get((v, t, a, d), "-"))
            for v, t in rows
        ])
        for h, (a, d) in zip(headers, columns)
    ]
    lines = []
    if title:
        lines += [title, "=" * len(title), ""]
    header_line = f"{'variant':<{row_width}}  " + "  ".join(
        f"{h:<{w}}" for h, w in zip(headers, col_widths)
    )
    lines += [header_line, "-" * len(header_line)]
    for v, t in rows:
        row_cells = "  ".join(
            f"{cells.get((v, t, a, d), '-'):<{w}}"
            for (a, d), w in zip(columns, col_widths)
        )
        lines.append(f"{_row_name(v, t):<{row_width}}  {row_cells}")

    totals = CheckStats()
    for r in results:
        totals.add(r.stats)
    lines += [
        "",
        f"jobs: {len(results)}  "
        f"wall {sum(r.seconds for r in results):.1f} s job-serial  "
        f"(encode {totals.encode_seconds:.1f} s, "
        f"solve {totals.solve_seconds:.1f} s, "
        f"{totals.sat_calls} solver calls, "
        f"{totals.conflicts} conflicts)",
    ]
    leaking: dict[str, set] = {}
    for r in results:
        detail = r.detail.get("result") if r.detail else None
        if detail and detail.get("leaking"):
            leaking.setdefault(
                _row_name(r.job.variant, r.job.threat), set()
            ).update(detail["leaking"])
    if leaking:
        lines.append("")
        lines.append("leaking persistent state:")
        for row, names in leaking.items():
            shown = ", ".join(sorted(names)[:4])
            more = f" (+{len(names) - 4} more)" if len(names) > 4 else ""
            lines.append(f"  {row}: {shown}{more}")
    diagnosed = [
        (r, line) for r in results
        if (line := format_diagnosis_line(r)) is not None
    ]
    if diagnosed:
        lines.append("")
        lines.append("diagnosis of vulnerable cells:")
        for r, line in diagnosed:
            lines.append(f"  {r.job.label()}: {line}")
    return "\n".join(lines)


def format_diagnosis_line(result) -> str | None:
    """One-line diagnosis digest of a vulnerable job (None when absent).

    Renders the ``diagnosis`` summary the engine attaches to vulnerable
    Algorithm 1/2 runs: the implicated fabric elements and the top
    countermeasure suggestion.
    """
    diagnosis = result.detail.get("diagnosis") if result.detail else None
    if not diagnosis:
        return None
    implicated = diagnosis.get("implicated") or []
    shown = ", ".join(implicated[:3]) or "no shared fabric element"
    more = f" (+{len(implicated) - 3} more)" if len(implicated) > 3 else ""
    suggestion = diagnosis.get("top_suggestion")
    hint = ""
    if suggestion:
        if len(suggestion) > 72:
            suggestion = suggestion[:69].rstrip() + "..."
        hint = f" — {suggestion}"
    return f"implicates {shown}{more}{hint}"


def campaign_summary(results) -> dict:
    """JSON-ready rollup of a campaign (verdict matrix + totals)."""
    results = list(results)
    totals = CheckStats()
    for r in results:
        totals.add(r.stats)
    columns = _columns(results)
    matrix: dict[str, dict[str, str]] = {}
    diagnoses: dict[str, dict[str, dict]] = {}
    for r in results:
        row = _row_name(r.job.variant, r.job.threat)
        column = _column_name(r.job.algorithm, r.job.depth, columns)
        matrix.setdefault(row, {})[column] = r.verdict
        diagnosis = r.detail.get("diagnosis") if r.detail else None
        if diagnosis:
            diagnoses.setdefault(row, {})[column] = {
                "implicated": diagnosis.get("implicated", []),
                "top_suggestion": diagnosis.get("top_suggestion"),
            }
    summary = {
        "jobs": len(results),
        "verdict_matrix": matrix,
        "job_seconds_total": sum(r.seconds for r in results),
        "stats": totals.to_dict(),
        "verdict_counts": {
            verdict: sum(1 for r in results if r.verdict == verdict)
            for verdict in sorted({r.verdict for r in results})
        },
    }
    if diagnoses:
        summary["diagnoses"] = diagnoses
    return summary


# -- repair trajectories ------------------------------------------------------


def format_repair_report(report) -> str:
    """Render a :class:`repro.repair.RepairReport` trajectory."""
    base = report.base
    p = report.provenance
    lines = [
        f"repair: {report.final_status}"
        + (f" via {'+'.join(report.recommendation['added'])}"
           if report.recommendation else ""),
        f"design: {p.get('design_fingerprint', '?')}",
        f"method: {p.get('method', base.method)}"
        + (f" @ depth {p['depth']}" if p.get("depth") is not None else ""),
        f"base verdict: {base.status} "
        f"({len(base.leaking)} leaking variable(s), {base.seconds:.1f} s)",
    ]
    if report.replay is not None:
        ok = "consistent" if report.replay.get("ok") else \
            f"{report.replay.get('mismatches')} MISMATCH(ES)"
        lines.append(
            f"counterexample replay: {ok} over "
            f"{report.replay.get('cycles_checked')} cycle(s)"
        )
    implicated = report.diagnosis.get("implicated") or []
    if implicated:
        lines.append("implicated: " + ", ".join(implicated[:4]))
    if report.attempts:
        lines.append("")
        header = (f"{'#':>2} {'patch':<44} {'verdict':<12} "
                  f"{'cost':>4} {'seconds':>8}")
        lines += [header, "-" * len(header)]
        for i, attempt in enumerate(report.attempts, start=1):
            lines.append(
                f"{i:>2} {'+'.join(attempt.added):<44} "
                f"{attempt.verdict.status:<12} {attempt.cost:>4} "
                f"{attempt.verdict.seconds:>8.1f}"
            )
    else:
        lines.append("no applicable patch candidates")
    if report.recommendation:
        lines.append("")
        lines.append(
            f"recommended (cheapest secure): "
            f"{'+'.join(report.recommendation['added'])} "
            f"(cost {report.recommendation['cost']}) -> "
            f"{report.recommendation['variant_id']}"
        )
    elif report.attempts:
        lines.append("")
        lines.append("no candidate reached SECURE — candidates exhausted")
    lines.append(f"total: {report.seconds:.1f} s")
    return "\n".join(lines)


def format_repair_campaign(cells) -> str:
    """Render the repair outcomes of a grid's vulnerable cells.

    ``cells`` are (label, RepairReport) pairs — see
    :func:`repro.campaign.repair.run_repair_campaign`.
    """
    cells = list(cells)
    if not cells:
        return "no vulnerable cells to repair"
    width = max(len(label) for label, _ in cells)
    lines = [f"{'cell':<{width}}  {'result':<10} {'winning patch':<40} "
             f"{'attempts':>8}"]
    lines.append("-" * len(lines[0]))
    for label, report in cells:
        patch = "+".join(report.recommendation["added"]) \
            if report.recommendation else "-"
        lines.append(
            f"{label:<{width}}  {report.final_status:<10} {patch:<40} "
            f"{len(report.attempts):>8}"
        )
    secured = sum(1 for _, r in cells if r.secured)
    lines.append("")
    lines.append(f"secured {secured}/{len(cells)} vulnerable cell(s)")
    return "\n".join(lines)


def format_fabric_status(status: dict) -> str:
    """Render a fabric coordinator's ``status`` payload.

    ``status`` is the dict the ``status`` op returns (see
    :meth:`repro.fabric.coordinator.Coordinator.status`): coordinator
    counters plus per-worker inflight/completed/cache-hit counters.
    """
    c = status.get("coordinator", {})
    cache = c.get("cache", {})
    lines = [
        f"fabric coordinator {c.get('address', '?')} "
        f"(protocol v{c.get('protocol', '?')}, "
        f"up {c.get('uptime_s', 0):.0f}s)",
        f"workers: {c.get('workers', 0)}  "
        f"queue: {c.get('queue_depth', 0)} queued, "
        f"{c.get('inflight', 0)} inflight",
        f"jobs: {c.get('jobs_submitted', 0)} submitted, "
        f"{c.get('jobs_completed', 0)} completed, "
        f"{c.get('jobs_coalesced', 0)} coalesced, "
        f"{c.get('jobs_requeued', 0)} requeued, "
        f"{c.get('jobs_timed_out', 0)} timed out",
        f"faults: {c.get('dead_workers', 0)} dead worker(s), "
        f"{c.get('departed_workers', 0)} departed, "
        f"{c.get('duplicate_results', 0)} duplicate result(s), "
        f"{c.get('late_results', 0)} late, "
        f"{c.get('steals', 0)} steal(s)",
        f"cache: {cache.get('entries', 0)} entries, "
        f"{cache.get('hits_served', 0)} hit(s) served on submit, "
        f"{cache.get('queries', 0)} quer(ies) "
        f"({cache.get('query_hits', 0)} hit), "
        f"{cache.get('pushes', 0)} push(es) replicated",
    ]
    workers = status.get("workers", {})
    if workers:
        lines.append("")
        header = (f"{'id':>4} {'name':<28} {'state':<6} {'done':>5} "
                  f"{'cache':>5} {'steal':>5} {'dup':>4} {'lease[s]':>8}")
        lines += [header, "-" * len(header)]
        for wid in sorted(workers, key=lambda w: int(w)):
            w = workers[wid]
            lines.append(
                f"{wid:>4} {w.get('name', '?'):<28} "
                f"{w.get('state', '?'):<6} {w.get('completed', 0):>5} "
                f"{w.get('cache_hits', 0):>5} {w.get('steals', 0):>5} "
                f"{w.get('duplicates', 0):>4} "
                f"{w.get('lease_remaining_s', 0):>8.1f}"
            )
    return "\n".join(lines)
