"""UPEC-SSC: formal detection of MCU-wide timing side channels.

The paper's primary contribution — Unique Program Execution Checking for
System Side Channels.  Public entry points:

* :class:`ThreatModel` / :class:`VictimPort` — what is confidential.
* :class:`StateClassifier` — Definitions 1 and 2 (``S_not_victim``,
  ``S_pers``).
* :func:`upec_ssc` — Algorithm 1 (2-cycle property, fixed-point loop).
* :func:`upec_ssc_unrolled` — Algorithm 2 (explicit multi-cycle
  counterexamples).
* :mod:`repro.upec.report` — human-readable verdicts and traces.
"""

from .classify import StateClassifier, UnclassifiedStateError
from .diagnose import Diagnosis, diagnose
from .miter import CheckStats, MiterCounterexample, MiterSession, UpecMiter
from .replay import ReplayReport, replay_counterexample
from .report import format_counterexample, format_iterations, format_result
from .ssc import IterationRecord, SscResult, upec_ssc
from .threat_model import ThreatModel, VictimPort
from .unrolled import UnrolledResult, upec_ssc_unrolled

__all__ = [
    "StateClassifier",
    "UnclassifiedStateError",
    "Diagnosis",
    "diagnose",
    "ReplayReport",
    "replay_counterexample",
    "CheckStats",
    "MiterCounterexample",
    "MiterSession",
    "UpecMiter",
    "format_counterexample",
    "format_iterations",
    "format_result",
    "IterationRecord",
    "SscResult",
    "upec_ssc",
    "ThreatModel",
    "VictimPort",
    "UnrolledResult",
    "upec_ssc_unrolled",
]
