"""Leak diagnosis: from a counterexample to a countermeasure proposal.

The paper closes with "our future work will explore a UPEC-SCC driven
design methodology leading to new and less conservative
countermeasures".  This module is the human-facing half of that loop:
it post-processes a ``vulnerable`` verdict into an actionable report —

* which persistent state received victim-dependent information,
* where the divergence was injected (earliest differing signals in the
  explicit trace),
* which fabric elements are implicated, *ranked* by the
  :class:`~repro.repair.localize.LeakLocalizer` (structural distance
  from the victim interface x leaking-state coverage of each element's
  fanout cone),
* and the candidate countermeasures — the same registry of structural
  transforms :func:`repro.repair.repair` applies and re-verifies
  automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .classify import StateClassifier
from .miter import MiterCounterexample
from .ssc import SscResult

__all__ = ["Diagnosis", "diagnose"]


@dataclass
class Diagnosis:
    """Structured explanation of a detected timing side channel."""

    leaking: set[str]
    earliest_divergence: list[str]
    implicated_resources: set[str]
    suggestions: list[str] = field(default_factory=list)
    #: Localizer output, best suspect first (serialized element dicts).
    ranking: list[dict] = field(default_factory=list)

    def top_suggestion(self) -> str | None:
        """The first candidate countermeasure, if any."""
        return self.suggestions[0] if self.suggestions else None

    def summary(self) -> dict:
        """Compact JSON-ready digest carried in campaign job details."""
        return {
            "implicated": sorted(self.implicated_resources),
            "top_suggestion": self.top_suggestion(),
            "ranking": self.ranking[:3],
        }

    def format_report(self) -> str:
        """Render the diagnosis as a human-readable report."""
        lines = ["Timing side-channel diagnosis", "=" * 34]
        lines.append("persistent state receiving victim-dependent data:")
        for name in sorted(self.leaking):
            lines.append(f"  {name}")
        lines.append("")
        lines.append("divergence first observable at:")
        for name in self.earliest_divergence:
            lines.append(f"  {name}")
        lines.append("")
        if self.ranking:
            lines.append("implicated fabric elements "
                         "(coverage/distance ranking):")
            for element in self.ranking[:6]:
                lines.append(
                    f"  {element['name']} ({element['owner']}): "
                    f"covers {element['coverage']} leaking var(s) at "
                    f"distance {element['distance']} "
                    f"[score {element['score']:.3f}]"
                )
            lines.append("")
        lines.append("candidate countermeasures:")
        for i, text in enumerate(self.suggestions, start=1):
            lines.append(f"  {i}. {text}")
        return "\n".join(lines)


def _earliest_divergence(cex: MiterCounterexample) -> list[str]:
    """Signals at the smallest cycle where the two traces disagree."""
    earliest: list[str] = []
    for t in range(cex.frame + 1):
        for name in sorted(cex.trace_a.cycles[t]):
            a = cex.trace_a.cycles[t].get(name)
            b = cex.trace_b.cycles[t].get(name)
            if a != b:
                earliest.append(f"{name} (cycle t+{t}: {a:#x} vs {b:#x})")
        if earliest:
            break
    return earliest


def diagnose(
    result: SscResult,
    classifier: StateClassifier,
) -> Diagnosis:
    """Explain a vulnerable verdict.

    Args:
        result: a ``vulnerable`` outcome of Algorithm 1 or the final
            record of Algorithm 2 (with a counterexample attached).
        classifier: the state classifier used for the run.

    Returns:
        A :class:`Diagnosis` with the ranked implicated elements and
        suggested fixes.
    """
    if not result.vulnerable or result.counterexample is None:
        raise ValueError("diagnosis requires a vulnerable result with a "
                         "counterexample")
    # Deferred: repro.repair sits above this package in the import
    # hierarchy (its engine drives repro.verify, which imports us).
    from ..repair.countermeasures import suggest
    from ..repair.localize import LeakLocalizer

    localizer = LeakLocalizer(classifier)
    ranking = localizer.rank(set(result.leaking))
    implicated = {
        e.describe() for e in localizer.implicated_interconnect(ranking, 6)
    }

    suggestions = suggest(ranking)
    suggestions.append(
        "map the victim's security-critical region into a memory device "
        "with a dedicated (non-shared) interconnect path, and constrain "
        "the symbolic victim page accordingly (Sec. 4.2)"
    )
    suggestions.append(
        "restrict the implicated spying IPs' legal configurations so they "
        "cannot address that device; compile the restrictions as firmware "
        "constraints and re-run UPEC-SSC to prove the fix"
    )
    leak_kinds = {
        classifier.circuit.regs[name].meta.kind
        for name in result.leaking
        if name in classifier.circuit.regs
    }
    if "memory" in leak_kinds:
        suggestions.append(
            "the leak lands in memory words (a BUSted progress ruler): "
            "denying timer access does NOT help — the memory itself is "
            "the clock (Sec. 4.1)"
        )
    return Diagnosis(
        leaking=set(result.leaking),
        earliest_divergence=_earliest_divergence(result.counterexample),
        implicated_resources=implicated,
        suggestions=suggestions,
        ranking=[e.to_dict() for e in ranking],
    )
