"""Leak diagnosis: from a counterexample to a countermeasure proposal.

The paper closes with "our future work will explore a UPEC-SCC driven
design methodology leading to new and less conservative
countermeasures".  This module is a first step in that direction: it
post-processes a ``vulnerable`` verdict into an actionable report —

* which persistent state received victim-dependent information,
* where the divergence was injected (earliest differing signals in the
  explicit trace),
* which shared resources (arbitrated slaves) are implicated on the
  structural path from the victim interface to the leak,
* and the candidate countermeasures, mirroring Sec. 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.circuit import Circuit
from ..rtl.structure import fanin_regs
from .classify import StateClassifier
from .miter import MiterCounterexample
from .ssc import SscResult

__all__ = ["Diagnosis", "diagnose"]


@dataclass
class Diagnosis:
    """Structured explanation of a detected timing side channel."""

    leaking: set[str]
    earliest_divergence: list[str]
    implicated_resources: set[str]
    suggestions: list[str] = field(default_factory=list)

    def format_report(self) -> str:
        """Render the diagnosis as a human-readable report."""
        lines = ["Timing side-channel diagnosis", "=" * 34]
        lines.append("persistent state receiving victim-dependent data:")
        for name in sorted(self.leaking):
            lines.append(f"  {name}")
        lines.append("")
        lines.append("divergence first observable at:")
        for name in self.earliest_divergence:
            lines.append(f"  {name}")
        lines.append("")
        if self.implicated_resources:
            lines.append("shared resources on the propagation path:")
            for name in sorted(self.implicated_resources):
                lines.append(f"  {name}")
            lines.append("")
        lines.append("candidate countermeasures:")
        for i, text in enumerate(self.suggestions, start=1):
            lines.append(f"  {i}. {text}")
        return "\n".join(lines)


def diagnose(
    result: SscResult,
    classifier: StateClassifier,
) -> Diagnosis:
    """Explain a vulnerable verdict.

    Args:
        result: a ``vulnerable`` outcome of Algorithm 1 or the final
            record of Algorithm 2 (with a counterexample attached).
        classifier: the state classifier used for the run.

    Returns:
        A :class:`Diagnosis` with the implicated resources and suggested
        fixes.
    """
    if not result.vulnerable or result.counterexample is None:
        raise ValueError("diagnosis requires a vulnerable result with a "
                         "counterexample")
    circuit: Circuit = classifier.circuit
    cex: MiterCounterexample = result.counterexample

    # Earliest diverging signals: smallest cycle where A and B disagree.
    earliest: list[str] = []
    for t in range(cex.frame + 1):
        for name in sorted(cex.trace_a.cycles[t]):
            a = cex.trace_a.cycles[t].get(name)
            b = cex.trace_b.cycles[t].get(name)
            if a != b:
                earliest.append(f"{name} (cycle t+{t}: {a:#x} vs {b:#x})")
        if earliest:
            break

    # Shared resources: arbitration state in the sequential fan-in of the
    # leaking registers (one step is enough: grant decisions feed the
    # spy's state directly).
    implicated: set[str] = set()
    frontier = set(result.leaking)
    seen: set[str] = set()
    for _ in range(3):  # bounded backward walk over register dependencies
        next_frontier: set[str] = set()
        for name in frontier:
            if name in seen or name not in circuit.regs:
                continue
            seen.add(name)
            info = circuit.regs[name]
            deps = fanin_regs([info.next]) if info.next is not None else set()
            for dep in deps:
                meta = circuit.regs[dep].meta
                if meta.kind == "interconnect":
                    implicated.add(f"{dep} ({meta.owner})")
                next_frontier.add(dep)
        frontier = next_frontier

    suggestions = [
        "map the victim's security-critical region into a memory device "
        "with a dedicated (non-shared) interconnect path, and constrain "
        "the symbolic victim page accordingly (Sec. 4.2)",
        "restrict the implicated spying IPs' legal configurations so they "
        "cannot address that device; compile the restrictions as firmware "
        "constraints and re-run UPEC-SSC to prove the fix",
    ]
    leak_kinds = {
        circuit.regs[name].meta.kind
        for name in result.leaking
        if name in circuit.regs
    }
    if "memory" in leak_kinds:
        suggestions.append(
            "the leak lands in memory words (a BUSted progress ruler): "
            "denying timer access does NOT help — the memory itself is "
            "the clock (Sec. 4.1)"
        )
    return Diagnosis(
        leaking=set(result.leaking),
        earliest_divergence=earliest,
        implicated_resources=implicated,
        suggestions=suggestions,
    )
