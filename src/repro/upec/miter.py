"""The UPEC-SSC 2-safety miter (Sec. 3.2/3.3 of the paper).

Two instances of the design-under-verification are unrolled side by side
over a bounded window with a shared symbolic starting state:

* ``Primary_Input_Constraints()`` — true primary inputs are *the same
  AIG variables* in both instances (equal by construction);
* ``State_Equivalence(S)`` at cycle ``t`` — state variables in ``S`` are
  bound to shared variables, so the duplicated logic structurally
  collapses and only the difference cone survives (this is what keeps
  the 2-safety proof tractable, mirroring commercial IPC engines);
* conditionally secret memory words (symbolic victim range) are bound as
  ``b = guard ? fresh : a`` — equal exactly when outside the protected
  page;
* ``Victim_Task_Executing()`` — the cut CPU interface is free in both
  instances during ``t..t+1`` except that *non-protected* accesses must
  be identical; from ``t+2`` on the interfaces are fully equal (the
  paper's Fig. 3/4 macros);
* the proof obligation is ``State_Equivalence(S')`` at the final cycle;
  a SAT answer yields the diverging set ``S_cex``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..aig.aig import Aig
from ..aig.bitblast import BitBlaster
from ..aig.cnf import CnfEncoder
from ..formal.trace import Trace, decode_vec
from ..formal.unroller import Unroller
from ..sat.solver import Solver
from .classify import StateClassifier
from .threat_model import ThreatModel

__all__ = ["MiterCounterexample", "CheckStats", "UpecMiter"]


@dataclass
class CheckStats:
    """Cost metrics of one property check (one Alg. 1/2 iteration)."""

    aig_nodes: int = 0
    cnf_vars: int = 0
    conflicts: int = 0
    decisions: int = 0
    build_seconds: float = 0.0
    solve_seconds: float = 0.0


@dataclass
class MiterCounterexample:
    """A violation of the UPEC-SSC property.

    Attributes:
        diff_names: state variables differing at the prove cycle (S_cex).
        frame: the prove cycle (t+k).
        trace_a / trace_b: concrete per-cycle signal values of the two
            instances, decoded from the SAT model.
        victim_page: concrete protected page index chosen by the solver.
        stats: solver cost metrics.
    """

    diff_names: set[str]
    frame: int
    trace_a: Trace
    trace_b: Trace
    victim_page: int
    stats: CheckStats = field(default_factory=CheckStats)

    def differing_signals(self) -> list[str]:
        """All signals (state or interface) differing anywhere in the window."""
        return self.trace_a.differing_signals(self.trace_b)


class UpecMiter:
    """Builds and checks UPEC-SSC property instances.

    A fresh miter is constructed per check: shrinking ``S`` changes which
    variables are unified, and structural hashing then does the heavy
    lifting.  (The ablation in benchmarks/E10 compares this against an
    assumption-based incremental encoding.)
    """

    def __init__(self, threat_model: ThreatModel, classifier: StateClassifier | None = None):
        self.tm = threat_model
        self.classifier = classifier or StateClassifier(threat_model)
        self.circuit = threat_model.circuit
        self.circuit.validate()

    # -- public API -------------------------------------------------------------

    def check(
        self,
        s_frames: list[set[str]],
        record_trace: bool = True,
    ) -> MiterCounterexample | None:
        """Check UPEC-SSC-unrolled(k, S[]) from Fig. 4 of the paper.

        ``s_frames[0]`` is assumed equal at cycle ``t`` (Fig. 3's
        ``State_Equivalence(S)``), ``s_frames[1..k-1]`` are assumed equal
        at the intermediate cycles (already proven in earlier unrolling
        stages), and ``s_frames[k]`` is the proof obligation at ``t+k``.
        With ``len(s_frames) == 2`` this is exactly the 2-cycle property
        of Fig. 3.

        Returns None if the property holds, else the counterexample.
        """
        if len(s_frames) < 2:
            raise ValueError("need at least [S@t, S@t+1]")
        depth = len(s_frames) - 1
        build_start = time.perf_counter()
        ctx = self._build(s_frames, depth)
        stats = CheckStats(
            aig_nodes=ctx["aig"].num_nodes(),
            build_seconds=time.perf_counter() - build_start,
        )
        solve_start = time.perf_counter()
        sat = ctx["solver"].solve()
        stats.solve_seconds = time.perf_counter() - solve_start
        stats.cnf_vars = ctx["solver"].n_vars
        stats.conflicts = ctx["solver"].stats["conflicts"]
        stats.decisions = ctx["solver"].stats["decisions"]
        if not sat:
            return None
        encoder: CnfEncoder = ctx["encoder"]
        diff_names = {
            name for name, lit in ctx["diff_lits"].items() if encoder.value(lit)
        }
        trace_a = trace_b = Trace(depth)
        if record_trace:
            trace_a = self._extract_trace(encoder, ctx["unroller_a"], depth)
            trace_b = self._extract_trace(encoder, ctx["unroller_b"], depth)
        victim_page = decode_vec(encoder, ctx["page_vec"])
        return MiterCounterexample(
            diff_names=diff_names,
            frame=depth,
            trace_a=trace_a,
            trace_b=trace_b,
            victim_page=victim_page,
            stats=stats,
        )

    # -- construction ---------------------------------------------------------------

    def _build(self, s_frames: list[set[str]], depth: int) -> dict:
        tm = self.tm
        circuit = self.circuit
        aig = Aig()
        victim_fields = set(tm.victim_port.fields())

        # Symbolic constants: shared between instances and across frames.
        stable_vecs = {
            name: aig.input_vec(f"const:{name}", circuit.inputs[name].width)
            for name in tm.stable_input_names
        }
        page_vec = stable_vecs[tm.victim_page]

        # True primary inputs: shared between instances, fresh per frame.
        shared_inputs: dict[tuple[int, str], list[int]] = {}

        def make_provider(tag: str):
            def provider(frame_idx: int, name: str, width: int):
                if name in stable_vecs:
                    return stable_vecs[name]
                if name in victim_fields:
                    return None  # per-instance fresh (constrained below)
                key = (frame_idx, name)
                vec = shared_inputs.get(key)
                if vec is None:
                    vec = aig.input_vec(f"{name}@{frame_idx}", width)
                    shared_inputs[key] = vec
                return vec

            return provider

        # Guard literals for conditionally secret words.
        guard_blaster = BitBlaster(
            aig, {("in", tm.victim_page): page_vec}
        )
        guard_of: dict[str, int] = {}

        def guard_lit(name: str) -> int:
            lit = guard_of.get(name)
            if lit is None:
                info = self.classifier.conditional_guard_info(name)
                assert info is not None
                array, index = info
                lit = guard_blaster.bit(tm.word_is_secret(array, index))
                guard_of[name] = lit
            return lit

        # Initial (cycle t) state binding implementing State_Equivalence(S[0]).
        init_a: dict[str, list[int]] = {}
        init_b: dict[str, list[int]] = {}
        s0 = s_frames[0]
        for name, info in circuit.regs.items():
            if name not in s0:
                continue  # both instances get independent fresh vectors
            if self.classifier.conditional_guard_info(name) is None:
                shared = aig.input_vec(f"S:{name}@0", info.width)
                init_a[name] = shared
                init_b[name] = shared
            else:
                vec_a = aig.input_vec(f"A:{name}@0", info.width)
                fresh_b = aig.input_vec(f"B:{name}@0", info.width)
                init_a[name] = vec_a
                init_b[name] = aig.mux_vec(guard_lit(name), fresh_b, vec_a)

        unroller_a = Unroller(circuit, aig, prefix="A", input_provider=make_provider("A"))
        unroller_b = Unroller(circuit, aig, prefix="B", input_provider=make_provider("B"))
        unroller_a.begin(init_a)
        unroller_b.begin(init_b)
        unroller_a.unroll(depth)
        unroller_b.unroll(depth)

        solver = Solver()
        encoder = CnfEncoder(aig, solver)

        # Victim_Task_Executing(): divergence only through protected accesses,
        # and only during t..t+1; equal interfaces afterwards.
        for f in range(depth + 1):
            constraint = self._victim_constraint(
                aig, unroller_a, unroller_b, page_vec, f, free_window=f <= 1
            )
            encoder.assume_true(constraint)

        # Threat-model isolation + firmware constraints, each frame & instance.
        per_frame_exprs = (
            tm.spy_isolation_constraints() + list(tm.firmware_constraints)
        )
        for unroller in (unroller_a, unroller_b):
            for f in range(depth + 1):
                for expr in per_frame_exprs:
                    encoder.assume_true(unroller.bit_at(f, expr))
            for expr in tm.invariants:
                encoder.assume_true(unroller.bit_at(0, expr))
        if tm.victim_page_constraint is not None:
            encoder.assume_true(unroller_a.bit_at(0, tm.victim_page_constraint))

        # Intermediate State_Equivalence(S[i]) assumptions (Alg. 2 stages
        # 1..k-1 were proven in earlier unrollings, so they may be assumed).
        for f in range(1, depth):
            for name in s_frames[f]:
                encoder.assume_true(
                    self._equal_lit(aig, unroller_a, unroller_b, name, f, guard_lit)
                )

        # Proof obligation: State_Equivalence(S[k]) at t+k; the violation
        # goal is "some variable in S[k] differs (and is not victim memory)".
        diff_lits: dict[str, int] = {}
        for name in s_frames[depth]:
            equal = self._equal_lit(aig, unroller_a, unroller_b, name, depth, guard_lit)
            diff_lits[name] = equal ^ 1
        encoder.assume_true(aig.or_many(diff_lits.values()))

        return {
            "aig": aig,
            "solver": solver,
            "encoder": encoder,
            "unroller_a": unroller_a,
            "unroller_b": unroller_b,
            "diff_lits": diff_lits,
            "page_vec": page_vec,
        }

    def _victim_constraint(
        self,
        aig: Aig,
        unroller_a: Unroller,
        unroller_b: Unroller,
        page_vec: list[int],
        frame: int,
        free_window: bool,
    ) -> int:
        tm = self.tm
        port = tm.victim_port
        fa = unroller_a.frame(frame).inputs
        fb = unroller_b.frame(frame).inputs
        all_equal = aig.and_many(
            aig.equal_vec(fa[name], fb[name]) for name in port.fields()
        )
        if not free_window:
            return all_equal
        page_bits = tm.page_bits

        def nonprot(frame_inputs: dict[str, list[int]]) -> int:
            valid = frame_inputs[port.valid][0]
            addr = frame_inputs[port.addr]
            in_page = aig.equal_vec(addr[page_bits:], page_vec)
            return aig.and_(valid, in_page ^ 1)

        either_nonprot = aig.or_(nonprot(fa), nonprot(fb))
        return aig.implies_(either_nonprot, all_equal)

    def _equal_lit(
        self,
        aig: Aig,
        unroller_a: Unroller,
        unroller_b: Unroller,
        name: str,
        frame: int,
        guard_lit,
    ) -> int:
        vec_a = unroller_a.frame(frame).regs[name]
        vec_b = unroller_b.frame(frame).regs[name]
        equal = aig.equal_vec(vec_a, vec_b)
        if self.classifier.conditional_guard_info(name) is not None:
            # Victim-range words are allowed to differ: equality is only
            # required when the word lies outside the protected page.
            equal = aig.or_(guard_lit(name), equal)
        return equal

    def _extract_trace(
        self, encoder: CnfEncoder, unroller: Unroller, depth: int
    ) -> Trace:
        trace = Trace(depth)
        for t in range(depth + 1):
            frame = unroller.frame(t)
            for table in (frame.regs, frame.inputs, frame.nets):
                for name, vec in table.items():
                    trace.record(t, name, decode_vec(encoder, vec))
        return trace
