"""The UPEC-SSC 2-safety miter (Sec. 3.2/3.3 of the paper).

Two instances of the design-under-verification are unrolled side by side
over a bounded window with a shared symbolic starting state:

* ``Primary_Input_Constraints()`` — true primary inputs are *the same
  AIG variables* in both instances (equal by construction);
* ``State_Equivalence(S)`` at cycle ``t`` — state variables in ``S`` are
  bound to shared variables, so the duplicated logic structurally
  collapses and only the difference cone survives (this is what keeps
  the 2-safety proof tractable, mirroring commercial IPC engines);
* conditionally secret memory words (symbolic victim range) are bound as
  ``b = guard ? fresh : a`` — equal exactly when outside the protected
  page;
* ``Victim_Task_Executing()`` — the cut CPU interface is free in both
  instances during ``t..t+1`` except that *non-protected* accesses must
  be identical; from ``t+2`` on the interfaces are fully equal (the
  paper's Fig. 3/4 macros);
* the proof obligation is ``State_Equivalence(S')`` at the final cycle.

Incremental architecture
------------------------

The Algorithm 1/2 loops only ever *shrink* the assumption set ``S``
between iterations, so this module keeps one :class:`MiterSession` alive
across all checks of a run instead of rebuilding AIG + CNF + solver per
iteration:

* instance A is unrolled **once** per depth against stable frame-0
  variables; when a variable leaves ``S`` only instance B's cones
  downstream of that register are re-derived (structural hashing hands
  every unchanged cone back), and the persistent CNF encoder emits
  clauses for new nodes only;
* intermediate-frame equalities and per-check proof goals sit behind
  :class:`~repro.sat.session.IncrementalSession` activation literals, so
  ``check(S)`` is a pure ``solve(assumptions)`` call and every learned
  clause survives into the next iteration;
* :meth:`MiterSession.check` computes the **can-diverge closure**: the
  set of state variables that can differ at the prove cycle under the
  current assumptions.  That set is a semantic property of the design —
  independent of solver heuristics, clause reuse, or encoding — which is
  what makes the incremental session and a from-scratch rebuild return
  bit-identical verdicts, ``final_s`` and leaking sets.

Preprocessing & pruning
-----------------------

A :class:`~repro.sat.preprocess.PreprocessConfig` (on by default)
selects the reductions that run between encoding and SAT search:
intermediate-frame substitution collapses the deep (k >= 2) obligations
onto instance A's cones (:meth:`MiterSession._reduced_final_regs` — the
fix for the secured-SoC Algorithm 2 cliff), and 64-lane bitwise
simulation (:class:`~repro.aig.bitsim.BitSim`) answers closure
candidates whose divergence a constraint-satisfying lane already
witnesses, skipping their SAT calls.  Because the closure is canonical,
the verdict trajectory is identical with preprocessing on or off.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from ..aig.aig import FALSE, Aig
from ..aig.bitblast import BitBlaster
from ..aig.bitsim import BitSim
from ..aig.cnf import CnfEncoder
from ..formal.trace import Trace, decode_unrolled_trace, decode_vec
from ..formal.unroller import Unroller
from ..sat.preprocess import PreprocessConfig
from ..sat.session import IncrementalSession
from .classify import StateClassifier, UnclassifiedStateError
from .threat_model import ThreatModel

__all__ = ["MiterCounterexample", "CheckStats", "MiterSession", "UpecMiter"]


@dataclass
class CheckStats:
    """Cost metrics of one property check (one Alg. 1/2 iteration).

    ``encode_seconds`` covers AIG construction and CNF emission (zero
    when a warm session had everything encoded already);
    ``solve_seconds`` is pure SAT search.  ``build_seconds`` is kept as
    a legacy alias of ``encode_seconds``.  ``learned_kept`` counts the
    learned clauses retained from earlier checks of the same session —
    the incremental-reuse pool — and ``sat_calls`` the solver queries
    issued for the closure computation.

    The preprocessing pipeline reports into its own bucket:
    ``preprocess_s`` is time spent in reductions (obligation cone
    substitution, CNF simplification, bitwise simulation),
    ``vars_eliminated`` / ``clauses_subsumed`` what the SatELite-style
    pass removed, and ``candidates_pruned_by_sim`` how many closure
    candidates skipped their SAT call because a simulated lane already
    witnessed their divergence.

    Portfolio racing (``repro.verify.portfolio``) reports into the last
    block: ``winner_lane`` is the backend spec of the lane whose answer
    was used, ``lanes_cancelled`` how many slower lanes were terminated,
    and ``race_wall_s`` the wall-clock of the whole race (including
    process spin-up — compare against ``seconds`` of a serial run).

    External solver backends report shipping costs: ``solver_starts``
    counts cold solver processes started for this check's queries (one
    per query on the one-shot DIMACS adapter; zero on the reference
    kernel and on the incremental ``ipasir:``/``pipe`` tier once warm),
    ``clauses_shipped`` the clauses sent to an external solver (the
    whole formula per query when one-shot; only newly added clauses
    when incremental), and ``cores_overapprox`` how many UNSAT answers
    carried the one-shot adapter's all-assumptions core padding instead
    of an exact failed-assumption set — downstream consumers of cores
    must treat those as unminimized.
    """

    aig_nodes: int = 0
    cnf_vars: int = 0
    conflicts: int = 0
    decisions: int = 0
    restarts: int = 0
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    sat_calls: int = 0
    learned_kept: int = 0
    preprocess_s: float = 0.0
    vars_eliminated: int = 0
    clauses_subsumed: int = 0
    candidates_pruned_by_sim: int = 0
    winner_lane: str = ""
    lanes_cancelled: int = 0
    race_wall_s: float = 0.0
    solver_starts: int = 0
    clauses_shipped: int = 0
    cores_overapprox: int = 0

    def count_solve(self, result) -> None:
        """Fold one session :class:`~repro.sat.session.SolveStats` in."""
        self.sat_calls += 1
        self.solve_seconds += result.seconds
        self.conflicts += result.conflicts
        self.decisions += result.decisions
        self.restarts += result.restarts
        self.solver_starts += result.solver_starts
        self.clauses_shipped += result.clauses_shipped
        if not result.sat and not result.core_exact:
            self.cores_overapprox += 1

    def add(self, other: "CheckStats") -> None:
        """Accumulate another check's costs (campaign/job rollups)."""
        self.aig_nodes = max(self.aig_nodes, other.aig_nodes)
        self.cnf_vars = max(self.cnf_vars, other.cnf_vars)
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.restarts += other.restarts
        self.build_seconds += other.build_seconds
        self.solve_seconds += other.solve_seconds
        self.encode_seconds += other.encode_seconds
        self.sat_calls += other.sat_calls
        self.learned_kept = max(self.learned_kept, other.learned_kept)
        self.preprocess_s += other.preprocess_s
        self.vars_eliminated += other.vars_eliminated
        self.clauses_subsumed += other.clauses_subsumed
        self.candidates_pruned_by_sim += other.candidates_pruned_by_sim
        self.winner_lane = other.winner_lane or self.winner_lane
        self.lanes_cancelled += other.lanes_cancelled
        self.race_wall_s += other.race_wall_s
        self.solver_starts += other.solver_starts
        self.clauses_shipped += other.clauses_shipped
        self.cores_overapprox += other.cores_overapprox

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CheckStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class MiterCounterexample:
    """A violation of the UPEC-SSC property.

    Attributes:
        diff_names: the can-diverge closure at the prove cycle — every
            state variable (within the checked phase, persistent or
            transient) that *can* differ there under the current
            assumptions.  Canonical: independent of solver state.
        frame: the prove cycle (t+k).
        trace_a / trace_b: concrete per-cycle signal values of the two
            instances for one witness model.
        victim_page: concrete protected page index in the witness model.
        stats: solver cost metrics.
    """

    diff_names: set[str]
    frame: int
    trace_a: Trace
    trace_b: Trace
    victim_page: int
    stats: CheckStats = field(default_factory=CheckStats)

    def differing_signals(self) -> list[str]:
        """All signals (state or interface) differing anywhere in the window."""
        return self.trace_a.differing_signals(self.trace_b)

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return {
            "diff_names": sorted(self.diff_names),
            "frame": self.frame,
            "trace_a": self.trace_a.to_dict(),
            "trace_b": self.trace_b.to_dict(),
            "victim_page": self.victim_page,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MiterCounterexample":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            diff_names=set(data["diff_names"]),
            frame=data["frame"],
            trace_a=Trace.from_dict(data["trace_a"]),
            trace_b=Trace.from_dict(data["trace_b"]),
            victim_page=data["victim_page"],
            stats=CheckStats.from_dict(data["stats"]),
        )


class _SimPruner:
    """The simulation side of one closure check.

    Holds the session's :class:`BitSim`, the check's full constraint
    list (permanent facts + assumptions) and the current valid-lane
    mask.  ``prune`` returns candidates a valid lane already proves
    divergent; ``refresh_from_model`` re-centers every lane on the
    solver's latest model (which satisfies all constraints by
    construction) with the divergence-driving inputs re-randomized.
    """

    __slots__ = ("session", "sim", "constraints", "mask", "witness_page")

    def __init__(self, session: "MiterSession", sim: BitSim,
                 constraints: list[int], mask: int):
        self.session = session
        self.sim = sim
        self.constraints = constraints
        self.mask = mask
        self.witness_page: int | None = None

    def prune(self, diffs: dict[str, int]) -> list[str]:
        """Names whose diff literal is 1 in some valid lane (sound
        can-diverge witnesses; their SAT calls are skipped)."""
        if not self.mask:
            return []
        sim = self.sim
        found: list[str] = []
        for name, diff in diffs.items():
            word = sim.word(diff) & self.mask
            if word:
                found.append(name)
                if self.witness_page is None:
                    lane = (word & -word).bit_length() - 1
                    self.witness_page = sum(
                        sim.lane_value(bit, lane) << i
                        for i, bit in enumerate(self.session.page_vec)
                    )
        return found

    def refresh_from_model(self) -> None:
        """Rebase the lanes on the solver's current model."""
        session = self.session
        self.sim.reseed(session._model_input_values(),
                        session._jitter_inputs())
        self.mask = self.sim.valid_lanes(self.constraints)


class MiterSession:
    """A persistent, incrementally extended encoding of the 2-safety miter.

    One session serves every ``check`` of an Algorithm 1/2 run: the
    unrolling depth may grow between calls and the frame-0 equality set
    ``S`` may shrink; both are handled incrementally on one AIG, one CNF
    encoder and one solver.

    Internals: every register has a stable frame-0 vector for instance A
    (``A:name@0``) and a stable fresh vector for instance B
    (``B:name@0``).  While ``name`` is in ``S``, instance B is unrolled
    over A's vector (structural collapse — the classic UPEC trick);
    once it leaves ``S``, B's cones downstream of the register are
    re-derived over the fresh vector.  Strashing returns all unaffected
    cones unchanged, so the persistent CNF encoder emits only the delta.
    """

    def __init__(self, threat_model: ThreatModel,
                 classifier: StateClassifier | None = None,
                 preprocess: PreprocessConfig | None = None,
                 backend: str | None = None):
        self.tm = threat_model
        self.classifier = classifier or StateClassifier(threat_model)
        self.preprocess = PreprocessConfig.coerce(preprocess)
        self.backend = backend or "reference"
        self.circuit = threat_model.circuit
        self.circuit.validate()
        self.aig = Aig()
        self.sat = IncrementalSession(backend=backend)
        self.solver = self.sat.solver
        self.encoder = CnfEncoder(self.aig, self.solver)
        circuit, aig, tm = self.circuit, self.aig, self.tm
        self._victim_fields = set(tm.victim_port.fields())
        # Symbolic constants: shared between instances and across frames.
        self._stable_vecs = {
            name: aig.input_vec(f"const:{name}", circuit.inputs[name].width)
            for name in tm.stable_input_names
        }
        self.page_vec = self._stable_vecs[tm.victim_page]
        self._guard_blaster = BitBlaster(
            aig, {("in", tm.victim_page): self.page_vec}
        )
        self._guard_of: dict[str, int] = {}
        # Stable frame-0 state vectors; B's fresh side is allocated on
        # first need (when a register leaves S, or for guarded words).
        self._vec_a0 = {
            name: aig.input_vec(f"A:{name}@0", info.width)
            for name, info in circuit.regs.items()
        }
        self._vec_b0: dict[str, list[int]] = {}
        # Shared primary-input vectors, stable across re-binds: keyed by
        # (frame, name); victim-port fields are per instance.
        self._input_vecs: dict[tuple, list[int]] = {}
        self._per_frame_exprs = (
            tm.spy_isolation_constraints() + list(tm.firmware_constraints)
        )
        self.unroller_a: Unroller | None = None
        self.unroller_b: Unroller | None = None
        self.depth = -1
        self._s0: frozenset[str] | None = None
        self.epochs = 0  # re-binds of instance B (S-set changes)
        # Preprocessing state: permanently asserted frame-0 facts (the
        # simulation pruner must respect them when judging lane
        # validity), the memoized lane simulator, and the cache of
        # substituted final-frame register vectors (the reduced deep
        # obligations), keyed by B-binding epoch + intermediate frames.
        self._permanent_lits: list[int] = []
        self._bitsim: BitSim | None = None
        self._sim_bound_through = 1
        self._sim_hopeless: set[tuple] = set()
        self._reduced_cache: dict[tuple, dict[str, list[int]]] = {}
        self._model_loaded = True
        self._sim_page: int | None = None

    # -- construction internals --------------------------------------------

    def _provider(self, instance: str):
        stable, victim = self._stable_vecs, self._victim_fields
        inputs, aig = self._input_vecs, self.aig

        def provider(frame_idx: int, name: str, width: int):
            if name in stable:
                return stable[name]
            key = (instance if name in victim else "shared", frame_idx, name)
            vec = inputs.get(key)
            if vec is None:
                vec = aig.input_vec(f"{key[0]}:{name}@{frame_idx}", width)
                inputs[key] = vec
            return vec

        return provider

    def _guard_lit(self, name: str) -> int:
        lit = self._guard_of.get(name)
        if lit is None:
            info = self.classifier.conditional_guard_info(name)
            assert info is not None
            array, index = info
            lit = self._guard_blaster.bit(self.tm.word_is_secret(array, index))
            self._guard_of[name] = lit
        return lit

    def _b0_fresh(self, name: str) -> list[int]:
        vec = self._vec_b0.get(name)
        if vec is None:
            vec = self.aig.input_vec(
                f"B:{name}@0", self.circuit.regs[name].width
            )
            self._vec_b0[name] = vec
        return vec

    def ensure(self, s0: frozenset[str], depth: int) -> None:
        """Bind frame-0 equality set ``s0`` and unroll through ``depth``.

        Instance A extends monotonically; instance B is re-derived when
        ``s0`` changes (strashing dedups every cone not downstream of a
        changed register).  Only unconditionally valid constraints are
        asserted here (frame-0 invariants and the victim-page constraint
        over the stable instance-A cone); everything whose validity is
        scoped to a frame range or to the current instance-B binding is
        switched on per check through activation literals — a stale
        epoch's or a deeper frame's constraint must never prune a model
        of a later, differently scoped check.
        """
        deepen = depth > self.depth
        rebind = s0 != self._s0
        if not deepen and not rebind:
            return
        aig, tm, encoder = self.aig, self.tm, self.encoder
        first = self.depth < 0
        self.depth = max(depth, self.depth)
        if self.unroller_a is None:
            self.unroller_a = Unroller(
                self.circuit, aig, prefix="A", input_provider=self._provider("A")
            )
            self.unroller_a.begin(dict(self._vec_a0))
        self.unroller_a.unroll(self.depth)
        if rebind:
            init_b: dict[str, list[int]] = {}
            for name in self.circuit.regs:
                if name not in s0:
                    init_b[name] = self._b0_fresh(name)
                elif self.classifier.conditional_guard_info(name) is None:
                    init_b[name] = self._vec_a0[name]
                else:
                    init_b[name] = aig.mux_vec(
                        self._guard_lit(name),
                        self._b0_fresh(name),
                        self._vec_a0[name],
                    )
            self.unroller_b = Unroller(
                self.circuit, aig, prefix="B", input_provider=self._provider("B")
            )
            self.unroller_b.begin(init_b)
            self._s0 = frozenset(s0)
            self.epochs += 1
            # Reduced obligations are keyed by epoch; entries from the
            # superseded binding can never be hit again.
            self._reduced_cache.clear()
        self.unroller_b.unroll(self.depth)
        if first:
            # Frame-0, instance-A-cone facts hold for every later check
            # regardless of depth or S binding: safe as permanent units.
            for expr in tm.invariants:
                lit = self.unroller_a.bit_at(0, expr)
                self._permanent_lits.append(lit)
                encoder.assume_true(lit)
            if tm.victim_page_constraint is not None:
                lit = self.unroller_a.bit_at(0, tm.victim_page_constraint)
                self._permanent_lits.append(lit)
                encoder.assume_true(lit)

    def _assume_lit(self, lit: int) -> int | None:
        """Activation variable asserting an AIG literal on demand.

        Installed once per distinct literal; constant-true literals need
        no clause at all.  Because the activation is keyed by the
        literal itself, a re-bound instance B (whose cones strash to new
        literals) automatically gets fresh, independently switched
        constraints while stale epochs' clauses stay dormant.
        """
        if lit == 1:  # constant TRUE
            return None
        return self.sat.assert_under(("lit", lit), self.encoder.lit(lit))

    def _scoped_lits(self, depth: int) -> list[int]:
        """AIG literals of every frame-/epoch-scoped constraint of a
        check at ``depth``: Victim_Task_Executing() per frame, the
        spy-isolation/firmware assumptions per frame and instance, and
        instance B's frame-0 invariants (instance A's are permanent)."""
        lits: list[int] = []
        for f in range(depth + 1):
            lits.append(self._victim_constraint(f, free_window=f <= 1))
            for unroller in (self.unroller_a, self.unroller_b):
                for expr in self._per_frame_exprs:
                    lits.append(unroller.bit_at(f, expr))
        for expr in self.tm.invariants:
            lits.append(self.unroller_b.bit_at(0, expr))
        return lits

    def _victim_constraint(self, frame: int, free_window: bool) -> int:
        tm, aig = self.tm, self.aig
        port = tm.victim_port
        fa = self.unroller_a.frame(frame).inputs
        fb = self.unroller_b.frame(frame).inputs
        all_equal = aig.and_many(
            aig.equal_vec(fa[name], fb[name]) for name in port.fields()
        )
        if not free_window:
            return all_equal
        page_bits = tm.page_bits

        def nonprot(frame_inputs: dict[str, list[int]]) -> int:
            valid = frame_inputs[port.valid][0]
            addr = frame_inputs[port.addr]
            in_page = aig.equal_vec(addr[page_bits:], self.page_vec)
            return aig.and_(valid, in_page ^ 1)

        either_nonprot = aig.or_(nonprot(fa), nonprot(fb))
        return aig.implies_(either_nonprot, all_equal)

    def equal_lit(self, name: str, frame: int) -> int:
        """AIG literal: ``name`` equal between instances at ``frame``.

        Victim-range words are allowed to differ: equality is only
        required when the word lies outside the protected page.
        """
        vec_a = self.unroller_a.frame(frame).regs[name]
        vec_b = self.unroller_b.frame(frame).regs[name]
        equal = self.aig.equal_vec(vec_a, vec_b)
        if self.classifier.conditional_guard_info(name) is not None:
            equal = self.aig.or_(self._guard_lit(name), equal)
        return equal

    def diff_lit(self, name: str, frame: int) -> int:
        """AIG literal: ``name`` differs (outside the victim range)."""
        return self.equal_lit(name, frame) ^ 1

    # -- preprocessing: obligation cone reduction ---------------------------

    def _offset_provider(self, instance: str, offset: int):
        """Input provider mapping a segment's local frames to global
        ones, so substituted re-unrollings bind the *same* input
        vectors as the session's instance-B frames."""
        inner = self._provider(instance)

        def provider(frame_idx: int, name: str, width: int):
            return inner(frame_idx + offset, name, width)

        return provider

    def _reduced_final_regs(
        self, s_frames: list[set[str]], depth: int
    ) -> dict[str, list[int]]:
        """Instance B's final-frame registers with the intermediate
        State_Equivalence(S[f]) assumptions substituted structurally.

        An assumed equality ``B@f[name] == A@f[name]`` licenses
        replacing B's vector with A's in every cone evaluated *after*
        frame ``f`` (for guarded victim words the replacement is
        ``guard ? B : A`` — equal exactly when the word is public).
        Re-unrolling the remaining frames over the substituted state
        lets structural hashing collapse instance B's deep cones onto
        instance A's, so the difference cone of the proof obligation at
        ``t+k`` shrinks to the logic genuinely reachable from the
        divergence window — the cone-of-influence reduction that turns
        the k >= 2 closure queries from minutes into seconds.  Sound
        because the equalities remain asserted as assumptions: every
        model of the reduced obligation is a model of the original and
        vice versa, so the canonical can-diverge closure is unchanged.
        """
        key = (self.epochs, depth,
               tuple(frozenset(s) for s in s_frames[1:depth]))
        cached = self._reduced_cache.get(key)
        if cached is not None:
            return cached
        aig = self.aig
        all_regs = set(self.circuit.regs)
        current = dict(self.unroller_b.frame(1).regs)
        for f in range(1, depth):
            subst: dict[str, list[int]] = {}
            for name, vec in current.items():
                if name in s_frames[f]:
                    vec_a = self.unroller_a.frame(f).regs[name]
                    if self.classifier.conditional_guard_info(name) is None:
                        subst[name] = vec_a
                    else:
                        subst[name] = aig.mux_vec(
                            self._guard_lit(name), vec, vec_a
                        )
                else:
                    subst[name] = vec
            # Only the next-state functions of the substituted frame are
            # needed; active_regs keeps the segment's nets lazy (never
            # built) and frame(0).next_regs avoids evaluating a whole
            # follow-on frame that nothing reads.
            segment = Unroller(
                self.circuit, aig, prefix="B",
                input_provider=self._offset_provider("B", f),
                active_regs=all_regs,
            )
            segment.begin(subst)
            current = dict(segment.frame(0).next_regs)
        self._reduced_cache[key] = current
        return current

    def _diff_factory(self, s_frames: list[set[str]], depth: int,
                      stats: CheckStats):
        """``name -> AIG diff literal`` for the final frame — against the
        substituted (reduced) obligation when COI preprocessing is on
        and the window is deep enough to have intermediate frames."""
        if depth < 2 or not self.preprocess.coi_enabled:
            return lambda name: self.diff_lit(name, depth)
        t0 = time.perf_counter()
        final = self._reduced_final_regs(s_frames, depth)
        stats.preprocess_s += time.perf_counter() - t0
        aig, classifier = self.aig, self.classifier

        def diff(name: str) -> int:
            vec_a = self.unroller_a.frame(depth).regs[name]
            equal = aig.equal_vec(vec_a, final[name])
            if classifier.conditional_guard_info(name) is not None:
                equal = aig.or_(self._guard_lit(name), equal)
            return equal ^ 1

        return diff

    # -- preprocessing: bitwise simulation pruning --------------------------

    def _input_nodes(self) -> list[int]:
        """All input node indices of the session AIG (cached per size)."""
        n = self.aig.num_nodes()
        cached = getattr(self, "_input_nodes_cache", None)
        if cached is not None and cached[0] == n:
            return cached[1]
        is_input = self.aig.is_input
        nodes = [node for node in range(1, n) if is_input(node)]
        self._input_nodes_cache = (n, nodes)
        return nodes

    def _model_input_values(self) -> dict[int, bool]:
        """Every input node's value under the solver's latest model
        (unencoded inputs complete to False, as trace decoding does)."""
        nodes = self._input_nodes()
        values = self.encoder.values([2 * node for node in nodes])
        return dict(zip(nodes, values))

    def _jitter_inputs(self) -> list[int]:
        """The divergence-driving inputs model-guided lanes randomize:
        everything — symbolic starting state included, because most
        closure candidates only diverge from specific start states —
        except the symbolic constants (the protected page must stay
        where the model put it) and the page-index bits of the victim
        addresses (so accesses keep hitting — or deliberately missing —
        the protected page exactly as the model's did, instead of
        scattering over the address space where a page hit is a coin
        flip per lane)."""
        skip: set[int] = set()
        for vec in self._stable_vecs.values():
            skip.update(lit >> 1 for lit in vec)
        addr = self.tm.victim_port.addr
        page_bits = self.tm.page_bits
        for (kind, _frame, name), vec in self._input_vecs.items():
            if name == addr:
                skip.update(lit >> 1 for lit in vec[page_bits:])
        return [node for node in self._input_nodes() if node not in skip]

    def _sim_context(self, base_lits: list[int], depth: int,
                     stats: CheckStats) -> "_SimPruner | None":
        """The simulation pruner for this check, or None.

        A lane is valid when every permanent fact and every assumption
        of the check simulates to 1 — such a lane is a real behaviour
        of the constrained miter, so a difference observed in it is a
        sound can-diverge witness.  Victim-port inputs of instance B
        are aliased to instance A's from frame 2 on (the window where
        the interfaces are constrained equal) so random stimuli do not
        trivially violate the equality macro; the remaining constraints
        are met by greedy per-cone lane repair up front and by
        re-centering on the solver's models as the closure progresses.
        """
        if not self.preprocess.bitsim_enabled:
            return None
        key = (self.epochs, depth)
        t0 = time.perf_counter()
        if self._bitsim is None:
            self._bitsim = BitSim(
                self.aig,
                num_patterns=self.preprocess.bitsim_patterns,
                seed=self.preprocess.bitsim_seed,
            )
        sim = self._bitsim
        fields = self.tm.victim_port.fields()
        for f in range(self._sim_bound_through + 1, depth + 1):
            fa = self.unroller_a.frame(f).inputs
            fb = self.unroller_b.frame(f).inputs
            for name in fields:
                for la, lb in zip(fa[name], fb[name]):
                    sim.alias(lb >> 1, la)
        self._sim_bound_through = max(self._sim_bound_through, depth)
        constraints = self._permanent_lits + base_lits
        mask = 0
        if key not in self._sim_hopeless:
            mask = sim.valid_lanes(constraints)
            if not mask:
                mask = sim.satisfy(constraints)
            if not mask:
                # Random lanes cannot meet this binding's constraints;
                # skip the repair search in later iterations (model
                # re-centering still works from the first SAT answer).
                self._sim_hopeless.add(key)
        stats.preprocess_s += time.perf_counter() - t0
        return _SimPruner(self, sim, constraints, mask)

    # -- checking -----------------------------------------------------------

    def _assumptions(self, s_frames: list[set[str]]) -> tuple[list[int], list[int]]:
        """Full assumption set of one check: the frame-/epoch-scoped
        constraints plus the intermediate State_Equivalence(S[i]).

        Returns ``(activation variables, AIG literals)`` — the former
        switch the constraints on for the SAT query, the latter let the
        simulation pruner judge which random lanes are genuine
        behaviours of the constrained system.
        """
        lits = self._scoped_lits(len(s_frames) - 1)
        for f in range(1, len(s_frames) - 1):
            for name in sorted(s_frames[f]):
                lits.append(self.equal_lit(name, f))
        acts = [self._assume_lit(lit) for lit in lits]
        return [a for a in acts if a is not None], lits

    def _partition(self, names: set[str]) -> tuple[list, list, list]:
        """Sorted (persistent, transient, unclassified) split of ``names``."""
        pers: list[str] = []
        trans: list[str] = []
        unknown: list[str] = []
        for name in sorted(names):
            try:
                (pers if self.classifier.in_s_pers(name) else trans).append(name)
            except UnclassifiedStateError:
                unknown.append(name)
        return pers, trans, unknown

    def _closure(self, names: list[str], base: list[int], diff_of,
                 sim_ctx, stats: CheckStats) -> list[str]:
        """All of ``names`` that can diverge at the prove cycle under
        ``base``.

        Enumerate models of "some remaining name differs" until UNSAT;
        every query reuses the session's learned clauses.  The result is
        the full satisfiability closure, so it does not depend on which
        model the solver happens to find first — nor on how much of it
        the preprocessing shortcuts below resolve without the solver:

        * a candidate whose diff literal is structurally FALSE (its
          reduced cones collapsed onto instance A's) can never diverge
          and skips the query entirely;
        * a candidate already distinguished by a valid simulation lane
          provably can diverge and goes straight to the found set
          (``candidates_pruned_by_sim``).
        """
        enc = self.encoder
        shortcut = self.preprocess.enabled
        remaining: list[str] = []
        found: list[str] = []
        diffs_of_name: dict[str, int] = {}
        sim_dry = 0
        for n in names:
            d = diff_of(n)
            if shortcut and d == FALSE:
                continue  # structurally equal: can never diverge
            diffs_of_name[n] = d
            remaining.append(n)

        def sim_prune() -> bool:
            """One simulation sweep over the survivors; returns whether
            it answered anything (found/remaining/stats updated)."""
            nonlocal remaining
            t0 = time.perf_counter()
            pruned = sim_ctx.prune(
                {n: diffs_of_name[n] for n in remaining}
            )
            stats.preprocess_s += time.perf_counter() - t0
            if not pruned:
                return False
            found.extend(pruned)
            stats.candidates_pruned_by_sim += len(pruned)
            pruned_set = set(pruned)
            remaining = [n for n in remaining if n not in pruned_set]
            return True

        if sim_ctx is not None and remaining:
            sim_prune()
        while remaining:
            diffs = [diffs_of_name[n] for n in remaining]
            t0 = time.perf_counter()
            goal = self.sat.scratch_goal([enc.lit(d) for d in diffs])
            stats.encode_seconds += time.perf_counter() - t0
            result = self.sat.solve(base + [goal])
            stats.count_solve(result)
            if not result.sat:
                break
            self._model_loaded = True
            values = enc.values(diffs)
            newly = [n for n, v in zip(remaining, values) if v]
            found.extend(newly)
            newset = set(newly)
            remaining = [n for n in remaining if n not in newset]
            if sim_ctx is not None and remaining and sim_dry < 2:
                # Model-guided exploration: re-center the lanes on the
                # model just found and sweep the survivors — divergences
                # adjacent to a real behaviour are far denser there than
                # in uniform random space.  Refreshing costs a graph
                # re-simulation, so it stops once two consecutive
                # models' neighbourhoods answered nothing.
                t0 = time.perf_counter()
                sim_ctx.refresh_from_model()
                stats.preprocess_s += time.perf_counter() - t0
                sim_dry = 0 if sim_prune() else sim_dry + 1
        return found

    def check(
        self,
        s_frames: list[set[str]],
        record_trace: bool = True,
    ) -> MiterCounterexample | None:
        """Check UPEC-SSC-unrolled(k, S[]) from Fig. 4 of the paper.

        ``s_frames[0]`` is assumed equal at cycle ``t`` (Fig. 3's
        ``State_Equivalence(S)``), ``s_frames[1..k-1]`` are assumed equal
        at the intermediate cycles (already proven in earlier unrolling
        stages), and ``s_frames[k]`` is the proof obligation at ``t+k``.
        With ``len(s_frames) == 2`` this is exactly the 2-cycle property
        of Fig. 3.

        Returns None if the property holds.  Otherwise the
        counterexample's ``diff_names`` is the *can-diverge closure*:
        if any persistent state variable can diverge, the closure over
        the persistent candidates (the full leaking set); otherwise the
        closure over the transient ones (peeled off ``S`` by the
        Algorithm 1/2 loops).  Either set is canonical — a semantic
        property of the design, so two sessions (or a session and a
        from-scratch rebuild) return identical results.

        Raises:
            UnclassifiedStateError: a state variable with no S_pers
                classification can diverge ("requires closer inspection"
                per Sec. 3.4 — annotate it and re-run).
        """
        if len(s_frames) < 2:
            raise ValueError("need at least [S@t, S@t+1]")
        depth = len(s_frames) - 1
        stats = CheckStats(learned_kept=self.solver.retained_learned())
        encode_start = time.perf_counter()
        self.ensure(frozenset(s_frames[0]), depth)
        base, base_lits = self._assumptions(s_frames)
        diff_of = self._diff_factory(s_frames, depth, stats)
        stats.encode_seconds = (time.perf_counter() - encode_start
                                - stats.preprocess_s)
        sim_ctx = self._sim_context(base_lits, depth, stats)
        self._model_loaded = False
        self._sim_page = None
        pers, trans, unknown = self._partition(s_frames[depth])
        if unknown:
            diverging = self._closure(unknown, base, diff_of, sim_ctx, stats)
            if diverging:
                self.classifier.in_s_pers(diverging[0])  # raises
        diff_names = self._closure(pers, base, diff_of, sim_ctx, stats)
        if not diff_names:
            diff_names = self._closure(trans, base, diff_of, sim_ctx, stats)
        if sim_ctx is not None:
            self._sim_page = sim_ctx.witness_page
        stats.aig_nodes = self.aig.num_nodes()
        stats.cnf_vars = self.solver.n_vars
        stats.build_seconds = stats.encode_seconds
        if not diff_names:
            return None
        if not record_trace:
            # The closure's last SAT model is still loaded (or, when
            # simulation pruning answered every candidate, a witness
            # lane stands in for it); no dedicated witness solve is
            # needed when no trace is decoded.
            return self._package(set(diff_names), depth, False, stats)
        return self._witness(diff_names, base, diff_of, depth,
                             record_trace, stats)

    def probe(
        self,
        s_frames: list[set[str]],
        record_trace: bool = False,
    ) -> MiterCounterexample | None:
        """Single-solve cost probe: one model of "some variable differs".

        This is the seed implementation's per-iteration query — *not*
        canonical (``diff_names`` depends on which model the solver
        finds), so algorithm loops use :meth:`check`; ablation
        benchmarks (E10) use this to measure the cost of one property
        instance at a given depth.
        """
        if len(s_frames) < 2:
            raise ValueError("need at least [S@t, S@t+1]")
        depth = len(s_frames) - 1
        stats = CheckStats(learned_kept=self.solver.retained_learned())
        encode_start = time.perf_counter()
        self.ensure(frozenset(s_frames[0]), depth)
        base, _ = self._assumptions(s_frames)
        names = sorted(s_frames[depth])
        diffs = [self.diff_lit(n, depth) for n in names]
        goal = self.sat.scratch_goal([self.encoder.lit(d) for d in diffs])
        stats.encode_seconds = time.perf_counter() - encode_start
        stats.build_seconds = stats.encode_seconds
        result = self.sat.solve(base + [goal])
        stats.count_solve(result)
        stats.aig_nodes = self.aig.num_nodes()
        stats.cnf_vars = self.solver.n_vars
        if not result.sat:
            return None
        self._model_loaded = True
        self._sim_page = None
        values = self.encoder.values(diffs)
        diff_names = {n for n, v in zip(names, values) if v}
        return self._package(diff_names, depth, record_trace, stats)

    def _witness(self, diff_names: list[str], base: list[int], diff_of,
                 depth: int, record_trace: bool,
                 stats: CheckStats) -> MiterCounterexample:
        """Solve once more for a concrete model showing the first
        (alphabetically) diverging variable, and decode it."""
        target = self.encoder.lit(diff_of(min(diff_names)))
        goal = self.sat.scratch_goal([target])
        result = self.sat.solve(base + [goal])
        stats.count_solve(result)
        assert result.sat, "witness re-solve of a satisfiable diff failed"
        self._model_loaded = True
        return self._package(set(diff_names), depth, record_trace, stats)

    def _package(self, diff_names: set[str], depth: int,
                 record_trace: bool, stats: CheckStats) -> MiterCounterexample:
        trace_a = trace_b = Trace(depth)
        if record_trace:
            trace_a = decode_unrolled_trace(self.encoder, self.unroller_a, depth)
            trace_b = decode_unrolled_trace(self.encoder, self.unroller_b, depth)
        if not self._model_loaded and self._sim_page is not None:
            # Simulation pruning answered every candidate without a SAT
            # call: the witness lane was a genuine constrained
            # behaviour, so its protected page stands in for the model.
            victim_page = self._sim_page
        else:
            victim_page = decode_vec(self.encoder, self.page_vec)
        return MiterCounterexample(
            diff_names=diff_names,
            frame=depth,
            trace_a=trace_a,
            trace_b=trace_b,
            victim_page=victim_page,
            stats=stats,
        )


class UpecMiter:
    """Builds and checks UPEC-SSC property instances.

    By default one incremental :class:`MiterSession` is shared by every
    ``check`` call (Algorithm 1/2 iterations reuse learned clauses and
    the encoded prefix).  With ``incremental=False`` each check builds a
    fresh session — the per-iteration-rebuild baseline; both modes
    return bit-identical results because ``check`` computes the
    canonical can-diverge closure.
    """

    def __init__(self, threat_model: ThreatModel,
                 classifier: StateClassifier | None = None,
                 incremental: bool = True,
                 preprocess: PreprocessConfig | None = None,
                 backend: str | None = None):
        self.tm = threat_model
        self.classifier = classifier or StateClassifier(threat_model)
        self.preprocess = PreprocessConfig.coerce(preprocess)
        self.backend = backend or "reference"
        self.circuit = threat_model.circuit
        self.circuit.validate()
        self.incremental = incremental
        self._session: MiterSession | None = None

    # -- public API -------------------------------------------------------------

    def session(self) -> MiterSession:
        """The persistent session (created on first use).

        In non-incremental mode a fresh session is returned per call.
        """
        if not self.incremental:
            return MiterSession(self.tm, self.classifier,
                                preprocess=self.preprocess,
                                backend=self.backend)
        if self._session is None:
            self._session = MiterSession(self.tm, self.classifier,
                                         preprocess=self.preprocess,
                                         backend=self.backend)
        return self._session

    def build(self, s_frames: list[set[str]],
              depth: int | None = None) -> MiterSession:
        """Construct (or extend) the miter encoding for ``s_frames``.

        Public replacement for the old private ``_build``: returns the
        session with frame-0 binding ``s_frames[0]`` unrolled through
        ``depth`` (default ``len(s_frames) - 1``), without solving.
        """
        if depth is None:
            if len(s_frames) < 2:
                raise ValueError("need at least [S@t, S@t+1]")
            depth = len(s_frames) - 1
        session = self.session()
        session.ensure(frozenset(s_frames[0]), depth)
        return session

    def check(
        self,
        s_frames: list[set[str]],
        record_trace: bool = True,
    ) -> MiterCounterexample | None:
        """Canonical closure check; see :meth:`MiterSession.check`."""
        return self.session().check(s_frames, record_trace=record_trace)

    def probe(
        self,
        s_frames: list[set[str]],
        record_trace: bool = False,
    ) -> MiterCounterexample | None:
        """Single-solve cost probe; see :meth:`MiterSession.probe`."""
        return self.session().probe(s_frames, record_trace=record_trace)
