"""The UPEC-SSC 2-safety miter (Sec. 3.2/3.3 of the paper).

Two instances of the design-under-verification are unrolled side by side
over a bounded window with a shared symbolic starting state:

* ``Primary_Input_Constraints()`` — true primary inputs are *the same
  AIG variables* in both instances (equal by construction);
* ``State_Equivalence(S)`` at cycle ``t`` — state variables in ``S`` are
  bound to shared variables, so the duplicated logic structurally
  collapses and only the difference cone survives (this is what keeps
  the 2-safety proof tractable, mirroring commercial IPC engines);
* conditionally secret memory words (symbolic victim range) are bound as
  ``b = guard ? fresh : a`` — equal exactly when outside the protected
  page;
* ``Victim_Task_Executing()`` — the cut CPU interface is free in both
  instances during ``t..t+1`` except that *non-protected* accesses must
  be identical; from ``t+2`` on the interfaces are fully equal (the
  paper's Fig. 3/4 macros);
* the proof obligation is ``State_Equivalence(S')`` at the final cycle.

Incremental architecture
------------------------

The Algorithm 1/2 loops only ever *shrink* the assumption set ``S``
between iterations, so this module keeps one :class:`MiterSession` alive
across all checks of a run instead of rebuilding AIG + CNF + solver per
iteration:

* instance A is unrolled **once** per depth against stable frame-0
  variables; when a variable leaves ``S`` only instance B's cones
  downstream of that register are re-derived (structural hashing hands
  every unchanged cone back), and the persistent CNF encoder emits
  clauses for new nodes only;
* intermediate-frame equalities and per-check proof goals sit behind
  :class:`~repro.sat.session.IncrementalSession` activation literals, so
  ``check(S)`` is a pure ``solve(assumptions)`` call and every learned
  clause survives into the next iteration;
* :meth:`MiterSession.check` computes the **can-diverge closure**: the
  set of state variables that can differ at the prove cycle under the
  current assumptions.  That set is a semantic property of the design —
  independent of solver heuristics, clause reuse, or encoding — which is
  what makes the incremental session and a from-scratch rebuild return
  bit-identical verdicts, ``final_s`` and leaking sets.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from ..aig.aig import Aig
from ..aig.bitblast import BitBlaster
from ..aig.cnf import CnfEncoder
from ..formal.trace import Trace, decode_unrolled_trace, decode_vec
from ..formal.unroller import Unroller
from ..sat.session import IncrementalSession
from .classify import StateClassifier, UnclassifiedStateError
from .threat_model import ThreatModel

__all__ = ["MiterCounterexample", "CheckStats", "MiterSession", "UpecMiter"]


@dataclass
class CheckStats:
    """Cost metrics of one property check (one Alg. 1/2 iteration).

    ``encode_seconds`` covers AIG construction and CNF emission (zero
    when a warm session had everything encoded already);
    ``solve_seconds`` is pure SAT search.  ``build_seconds`` is kept as
    a legacy alias of ``encode_seconds``.  ``learned_kept`` counts the
    learned clauses retained from earlier checks of the same session —
    the incremental-reuse pool — and ``sat_calls`` the solver queries
    issued for the closure computation.
    """

    aig_nodes: int = 0
    cnf_vars: int = 0
    conflicts: int = 0
    decisions: int = 0
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    sat_calls: int = 0
    learned_kept: int = 0

    def add(self, other: "CheckStats") -> None:
        """Accumulate another check's costs (campaign/job rollups)."""
        self.aig_nodes = max(self.aig_nodes, other.aig_nodes)
        self.cnf_vars = max(self.cnf_vars, other.cnf_vars)
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.build_seconds += other.build_seconds
        self.solve_seconds += other.solve_seconds
        self.encode_seconds += other.encode_seconds
        self.sat_calls += other.sat_calls
        self.learned_kept = max(self.learned_kept, other.learned_kept)

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CheckStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class MiterCounterexample:
    """A violation of the UPEC-SSC property.

    Attributes:
        diff_names: the can-diverge closure at the prove cycle — every
            state variable (within the checked phase, persistent or
            transient) that *can* differ there under the current
            assumptions.  Canonical: independent of solver state.
        frame: the prove cycle (t+k).
        trace_a / trace_b: concrete per-cycle signal values of the two
            instances for one witness model.
        victim_page: concrete protected page index in the witness model.
        stats: solver cost metrics.
    """

    diff_names: set[str]
    frame: int
    trace_a: Trace
    trace_b: Trace
    victim_page: int
    stats: CheckStats = field(default_factory=CheckStats)

    def differing_signals(self) -> list[str]:
        """All signals (state or interface) differing anywhere in the window."""
        return self.trace_a.differing_signals(self.trace_b)

    def to_dict(self) -> dict:
        """JSON-ready representation (worker IPC / campaign artifacts)."""
        return {
            "diff_names": sorted(self.diff_names),
            "frame": self.frame,
            "trace_a": self.trace_a.to_dict(),
            "trace_b": self.trace_b.to_dict(),
            "victim_page": self.victim_page,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MiterCounterexample":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            diff_names=set(data["diff_names"]),
            frame=data["frame"],
            trace_a=Trace.from_dict(data["trace_a"]),
            trace_b=Trace.from_dict(data["trace_b"]),
            victim_page=data["victim_page"],
            stats=CheckStats.from_dict(data["stats"]),
        )


class MiterSession:
    """A persistent, incrementally extended encoding of the 2-safety miter.

    One session serves every ``check`` of an Algorithm 1/2 run: the
    unrolling depth may grow between calls and the frame-0 equality set
    ``S`` may shrink; both are handled incrementally on one AIG, one CNF
    encoder and one solver.

    Internals: every register has a stable frame-0 vector for instance A
    (``A:name@0``) and a stable fresh vector for instance B
    (``B:name@0``).  While ``name`` is in ``S``, instance B is unrolled
    over A's vector (structural collapse — the classic UPEC trick);
    once it leaves ``S``, B's cones downstream of the register are
    re-derived over the fresh vector.  Strashing returns all unaffected
    cones unchanged, so the persistent CNF encoder emits only the delta.
    """

    def __init__(self, threat_model: ThreatModel,
                 classifier: StateClassifier | None = None):
        self.tm = threat_model
        self.classifier = classifier or StateClassifier(threat_model)
        self.circuit = threat_model.circuit
        self.circuit.validate()
        self.aig = Aig()
        self.sat = IncrementalSession()
        self.solver = self.sat.solver
        self.encoder = CnfEncoder(self.aig, self.solver)
        circuit, aig, tm = self.circuit, self.aig, self.tm
        self._victim_fields = set(tm.victim_port.fields())
        # Symbolic constants: shared between instances and across frames.
        self._stable_vecs = {
            name: aig.input_vec(f"const:{name}", circuit.inputs[name].width)
            for name in tm.stable_input_names
        }
        self.page_vec = self._stable_vecs[tm.victim_page]
        self._guard_blaster = BitBlaster(
            aig, {("in", tm.victim_page): self.page_vec}
        )
        self._guard_of: dict[str, int] = {}
        # Stable frame-0 state vectors; B's fresh side is allocated on
        # first need (when a register leaves S, or for guarded words).
        self._vec_a0 = {
            name: aig.input_vec(f"A:{name}@0", info.width)
            for name, info in circuit.regs.items()
        }
        self._vec_b0: dict[str, list[int]] = {}
        # Shared primary-input vectors, stable across re-binds: keyed by
        # (frame, name); victim-port fields are per instance.
        self._input_vecs: dict[tuple, list[int]] = {}
        self._per_frame_exprs = (
            tm.spy_isolation_constraints() + list(tm.firmware_constraints)
        )
        self.unroller_a: Unroller | None = None
        self.unroller_b: Unroller | None = None
        self.depth = -1
        self._s0: frozenset[str] | None = None
        self.epochs = 0  # re-binds of instance B (S-set changes)

    # -- construction internals --------------------------------------------

    def _provider(self, instance: str):
        stable, victim = self._stable_vecs, self._victim_fields
        inputs, aig = self._input_vecs, self.aig

        def provider(frame_idx: int, name: str, width: int):
            if name in stable:
                return stable[name]
            key = (instance if name in victim else "shared", frame_idx, name)
            vec = inputs.get(key)
            if vec is None:
                vec = aig.input_vec(f"{key[0]}:{name}@{frame_idx}", width)
                inputs[key] = vec
            return vec

        return provider

    def _guard_lit(self, name: str) -> int:
        lit = self._guard_of.get(name)
        if lit is None:
            info = self.classifier.conditional_guard_info(name)
            assert info is not None
            array, index = info
            lit = self._guard_blaster.bit(self.tm.word_is_secret(array, index))
            self._guard_of[name] = lit
        return lit

    def _b0_fresh(self, name: str) -> list[int]:
        vec = self._vec_b0.get(name)
        if vec is None:
            vec = self.aig.input_vec(
                f"B:{name}@0", self.circuit.regs[name].width
            )
            self._vec_b0[name] = vec
        return vec

    def ensure(self, s0: frozenset[str], depth: int) -> None:
        """Bind frame-0 equality set ``s0`` and unroll through ``depth``.

        Instance A extends monotonically; instance B is re-derived when
        ``s0`` changes (strashing dedups every cone not downstream of a
        changed register).  Only unconditionally valid constraints are
        asserted here (frame-0 invariants and the victim-page constraint
        over the stable instance-A cone); everything whose validity is
        scoped to a frame range or to the current instance-B binding is
        switched on per check through activation literals — a stale
        epoch's or a deeper frame's constraint must never prune a model
        of a later, differently scoped check.
        """
        deepen = depth > self.depth
        rebind = s0 != self._s0
        if not deepen and not rebind:
            return
        aig, tm, encoder = self.aig, self.tm, self.encoder
        first = self.depth < 0
        self.depth = max(depth, self.depth)
        if self.unroller_a is None:
            self.unroller_a = Unroller(
                self.circuit, aig, prefix="A", input_provider=self._provider("A")
            )
            self.unroller_a.begin(dict(self._vec_a0))
        self.unroller_a.unroll(self.depth)
        if rebind:
            init_b: dict[str, list[int]] = {}
            for name in self.circuit.regs:
                if name not in s0:
                    init_b[name] = self._b0_fresh(name)
                elif self.classifier.conditional_guard_info(name) is None:
                    init_b[name] = self._vec_a0[name]
                else:
                    init_b[name] = aig.mux_vec(
                        self._guard_lit(name),
                        self._b0_fresh(name),
                        self._vec_a0[name],
                    )
            self.unroller_b = Unroller(
                self.circuit, aig, prefix="B", input_provider=self._provider("B")
            )
            self.unroller_b.begin(init_b)
            self._s0 = frozenset(s0)
            self.epochs += 1
        self.unroller_b.unroll(self.depth)
        if first:
            # Frame-0, instance-A-cone facts hold for every later check
            # regardless of depth or S binding: safe as permanent units.
            for expr in tm.invariants:
                encoder.assume_true(self.unroller_a.bit_at(0, expr))
            if tm.victim_page_constraint is not None:
                encoder.assume_true(
                    self.unroller_a.bit_at(0, tm.victim_page_constraint)
                )

    def _assume_lit(self, lit: int) -> int | None:
        """Activation variable asserting an AIG literal on demand.

        Installed once per distinct literal; constant-true literals need
        no clause at all.  Because the activation is keyed by the
        literal itself, a re-bound instance B (whose cones strash to new
        literals) automatically gets fresh, independently switched
        constraints while stale epochs' clauses stay dormant.
        """
        if lit == 1:  # constant TRUE
            return None
        return self.sat.assert_under(("lit", lit), self.encoder.lit(lit))

    def _scoped_assumptions(self, depth: int) -> list[int]:
        """Activation literals for every frame-/epoch-scoped constraint
        of a check at ``depth``: Victim_Task_Executing() per frame, the
        spy-isolation/firmware assumptions per frame and instance, and
        instance B's frame-0 invariants (instance A's are permanent)."""
        acts: list[int] = []
        for f in range(depth + 1):
            acts.append(
                self._assume_lit(self._victim_constraint(f, free_window=f <= 1))
            )
            for unroller in (self.unroller_a, self.unroller_b):
                for expr in self._per_frame_exprs:
                    acts.append(self._assume_lit(unroller.bit_at(f, expr)))
        for expr in self.tm.invariants:
            acts.append(self._assume_lit(self.unroller_b.bit_at(0, expr)))
        return [a for a in acts if a is not None]

    def _victim_constraint(self, frame: int, free_window: bool) -> int:
        tm, aig = self.tm, self.aig
        port = tm.victim_port
        fa = self.unroller_a.frame(frame).inputs
        fb = self.unroller_b.frame(frame).inputs
        all_equal = aig.and_many(
            aig.equal_vec(fa[name], fb[name]) for name in port.fields()
        )
        if not free_window:
            return all_equal
        page_bits = tm.page_bits

        def nonprot(frame_inputs: dict[str, list[int]]) -> int:
            valid = frame_inputs[port.valid][0]
            addr = frame_inputs[port.addr]
            in_page = aig.equal_vec(addr[page_bits:], self.page_vec)
            return aig.and_(valid, in_page ^ 1)

        either_nonprot = aig.or_(nonprot(fa), nonprot(fb))
        return aig.implies_(either_nonprot, all_equal)

    def equal_lit(self, name: str, frame: int) -> int:
        """AIG literal: ``name`` equal between instances at ``frame``.

        Victim-range words are allowed to differ: equality is only
        required when the word lies outside the protected page.
        """
        vec_a = self.unroller_a.frame(frame).regs[name]
        vec_b = self.unroller_b.frame(frame).regs[name]
        equal = self.aig.equal_vec(vec_a, vec_b)
        if self.classifier.conditional_guard_info(name) is not None:
            equal = self.aig.or_(self._guard_lit(name), equal)
        return equal

    def diff_lit(self, name: str, frame: int) -> int:
        """AIG literal: ``name`` differs (outside the victim range)."""
        return self.equal_lit(name, frame) ^ 1

    # -- checking -----------------------------------------------------------

    def _assumptions(self, s_frames: list[set[str]]) -> list[int]:
        """Full assumption set of one check: the frame-/epoch-scoped
        constraints plus the intermediate State_Equivalence(S[i])."""
        base = self._scoped_assumptions(len(s_frames) - 1)
        for f in range(1, len(s_frames) - 1):
            for name in sorted(s_frames[f]):
                act = self._assume_lit(self.equal_lit(name, f))
                if act is not None:
                    base.append(act)
        return base

    def _partition(self, names: set[str]) -> tuple[list, list, list]:
        """Sorted (persistent, transient, unclassified) split of ``names``."""
        pers: list[str] = []
        trans: list[str] = []
        unknown: list[str] = []
        for name in sorted(names):
            try:
                (pers if self.classifier.in_s_pers(name) else trans).append(name)
            except UnclassifiedStateError:
                unknown.append(name)
        return pers, trans, unknown

    def _closure(self, names: list[str], base: list[int], depth: int,
                 stats: CheckStats) -> list[str]:
        """All of ``names`` that can diverge at ``depth`` under ``base``.

        Enumerate models of "some remaining name differs" until UNSAT;
        every query reuses the session's learned clauses.  The result is
        the full satisfiability closure, so it does not depend on which
        model the solver happens to find first.
        """
        enc = self.encoder
        remaining = list(names)
        found: list[str] = []
        while remaining:
            diffs = [self.diff_lit(n, depth) for n in remaining]
            t0 = time.perf_counter()
            goal = self.sat.scratch_goal([enc.lit(d) for d in diffs])
            stats.encode_seconds += time.perf_counter() - t0
            result = self.sat.solve(base + [goal])
            stats.sat_calls += 1
            stats.solve_seconds += result.seconds
            stats.conflicts += result.conflicts
            stats.decisions += result.decisions
            if not result.sat:
                break
            values = enc.values(diffs)
            newly = [n for n, v in zip(remaining, values) if v]
            found.extend(newly)
            newset = set(newly)
            remaining = [n for n in remaining if n not in newset]
        return found

    def check(
        self,
        s_frames: list[set[str]],
        record_trace: bool = True,
    ) -> MiterCounterexample | None:
        """Check UPEC-SSC-unrolled(k, S[]) from Fig. 4 of the paper.

        ``s_frames[0]`` is assumed equal at cycle ``t`` (Fig. 3's
        ``State_Equivalence(S)``), ``s_frames[1..k-1]`` are assumed equal
        at the intermediate cycles (already proven in earlier unrolling
        stages), and ``s_frames[k]`` is the proof obligation at ``t+k``.
        With ``len(s_frames) == 2`` this is exactly the 2-cycle property
        of Fig. 3.

        Returns None if the property holds.  Otherwise the
        counterexample's ``diff_names`` is the *can-diverge closure*:
        if any persistent state variable can diverge, the closure over
        the persistent candidates (the full leaking set); otherwise the
        closure over the transient ones (peeled off ``S`` by the
        Algorithm 1/2 loops).  Either set is canonical — a semantic
        property of the design, so two sessions (or a session and a
        from-scratch rebuild) return identical results.

        Raises:
            UnclassifiedStateError: a state variable with no S_pers
                classification can diverge ("requires closer inspection"
                per Sec. 3.4 — annotate it and re-run).
        """
        if len(s_frames) < 2:
            raise ValueError("need at least [S@t, S@t+1]")
        depth = len(s_frames) - 1
        stats = CheckStats(learned_kept=self.solver.retained_learned())
        encode_start = time.perf_counter()
        self.ensure(frozenset(s_frames[0]), depth)
        base = self._assumptions(s_frames)
        stats.encode_seconds = time.perf_counter() - encode_start
        pers, trans, unknown = self._partition(s_frames[depth])
        if unknown:
            diverging = self._closure(unknown, base, depth, stats)
            if diverging:
                self.classifier.in_s_pers(diverging[0])  # raises
        diff_names = self._closure(pers, base, depth, stats)
        if not diff_names:
            diff_names = self._closure(trans, base, depth, stats)
        stats.aig_nodes = self.aig.num_nodes()
        stats.cnf_vars = self.solver.n_vars
        stats.build_seconds = stats.encode_seconds
        if not diff_names:
            return None
        if not record_trace:
            # The closure's last SAT model is still loaded; no need for a
            # dedicated witness solve when no trace is decoded.
            return self._package(set(diff_names), depth, False, stats)
        return self._witness(diff_names, base, depth, record_trace, stats)

    def probe(
        self,
        s_frames: list[set[str]],
        record_trace: bool = False,
    ) -> MiterCounterexample | None:
        """Single-solve cost probe: one model of "some variable differs".

        This is the seed implementation's per-iteration query — *not*
        canonical (``diff_names`` depends on which model the solver
        finds), so algorithm loops use :meth:`check`; ablation
        benchmarks (E10) use this to measure the cost of one property
        instance at a given depth.
        """
        if len(s_frames) < 2:
            raise ValueError("need at least [S@t, S@t+1]")
        depth = len(s_frames) - 1
        stats = CheckStats(learned_kept=self.solver.retained_learned())
        encode_start = time.perf_counter()
        self.ensure(frozenset(s_frames[0]), depth)
        base = self._assumptions(s_frames)
        names = sorted(s_frames[depth])
        diffs = [self.diff_lit(n, depth) for n in names]
        goal = self.sat.scratch_goal([self.encoder.lit(d) for d in diffs])
        stats.encode_seconds = time.perf_counter() - encode_start
        stats.build_seconds = stats.encode_seconds
        result = self.sat.solve(base + [goal])
        stats.sat_calls = 1
        stats.solve_seconds = result.seconds
        stats.conflicts = result.conflicts
        stats.decisions = result.decisions
        stats.aig_nodes = self.aig.num_nodes()
        stats.cnf_vars = self.solver.n_vars
        if not result.sat:
            return None
        values = self.encoder.values(diffs)
        diff_names = {n for n, v in zip(names, values) if v}
        return self._package(diff_names, depth, record_trace, stats)

    def _witness(self, diff_names: list[str], base: list[int], depth: int,
                 record_trace: bool, stats: CheckStats) -> MiterCounterexample:
        """Solve once more for a concrete model showing the first
        (alphabetically) diverging variable, and decode it."""
        target = self.encoder.lit(self.diff_lit(min(diff_names), depth))
        goal = self.sat.scratch_goal([target])
        result = self.sat.solve(base + [goal])
        stats.sat_calls += 1
        stats.solve_seconds += result.seconds
        stats.conflicts += result.conflicts
        stats.decisions += result.decisions
        assert result.sat, "witness re-solve of a satisfiable diff failed"
        return self._package(set(diff_names), depth, record_trace, stats)

    def _package(self, diff_names: set[str], depth: int,
                 record_trace: bool, stats: CheckStats) -> MiterCounterexample:
        trace_a = trace_b = Trace(depth)
        if record_trace:
            trace_a = decode_unrolled_trace(self.encoder, self.unroller_a, depth)
            trace_b = decode_unrolled_trace(self.encoder, self.unroller_b, depth)
        victim_page = decode_vec(self.encoder, self.page_vec)
        return MiterCounterexample(
            diff_names=diff_names,
            frame=depth,
            trace_a=trace_a,
            trace_b=trace_b,
            victim_page=victim_page,
            stats=stats,
        )


class UpecMiter:
    """Builds and checks UPEC-SSC property instances.

    By default one incremental :class:`MiterSession` is shared by every
    ``check`` call (Algorithm 1/2 iterations reuse learned clauses and
    the encoded prefix).  With ``incremental=False`` each check builds a
    fresh session — the per-iteration-rebuild baseline; both modes
    return bit-identical results because ``check`` computes the
    canonical can-diverge closure.
    """

    def __init__(self, threat_model: ThreatModel,
                 classifier: StateClassifier | None = None,
                 incremental: bool = True):
        self.tm = threat_model
        self.classifier = classifier or StateClassifier(threat_model)
        self.circuit = threat_model.circuit
        self.circuit.validate()
        self.incremental = incremental
        self._session: MiterSession | None = None

    # -- public API -------------------------------------------------------------

    def session(self) -> MiterSession:
        """The persistent session (created on first use).

        In non-incremental mode a fresh session is returned per call.
        """
        if not self.incremental:
            return MiterSession(self.tm, self.classifier)
        if self._session is None:
            self._session = MiterSession(self.tm, self.classifier)
        return self._session

    def build(self, s_frames: list[set[str]],
              depth: int | None = None) -> MiterSession:
        """Construct (or extend) the miter encoding for ``s_frames``.

        Public replacement for the old private ``_build``: returns the
        session with frame-0 binding ``s_frames[0]`` unrolled through
        ``depth`` (default ``len(s_frames) - 1``), without solving.
        """
        if depth is None:
            if len(s_frames) < 2:
                raise ValueError("need at least [S@t, S@t+1]")
            depth = len(s_frames) - 1
        session = self.session()
        session.ensure(frozenset(s_frames[0]), depth)
        return session

    def check(
        self,
        s_frames: list[set[str]],
        record_trace: bool = True,
    ) -> MiterCounterexample | None:
        """Canonical closure check; see :meth:`MiterSession.check`."""
        return self.session().check(s_frames, record_trace=record_trace)

    def probe(
        self,
        s_frames: list[set[str]],
        record_trace: bool = False,
    ) -> MiterCounterexample | None:
        """Single-solve cost probe; see :meth:`MiterSession.probe`."""
        return self.session().probe(s_frames, record_trace=record_trace)
