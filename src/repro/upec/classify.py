"""State-variable classification: ``S_not_victim`` and ``S_pers``.

Implements Definitions 1 and 2 of the paper:

* ``S_not_victim`` — every state variable except CPU state and victim
  memory.  With the CPU cut out of the formal model, this is all
  registers minus the *conditionally secret* memory words (whose
  membership depends on the symbolic protected page and is handled by
  guard expressions in the miter, not by set membership).
* ``S_pers`` — state that is (1) attacker-accessible and (2) persists
  across a context switch.  Following Sec. 3.4, membership only needs to
  be decided for variables that actually appear in counterexamples; the
  decision rules are:

  - ``interconnect`` buffers are overwritten with every transaction and
    are **not** persistent;
  - ``memory`` words and ``ip`` registers are persistent, and in
    ``S_pers`` when attacker-accessible (explicit ``accessible``
    annotation, defaulting to True for IP registers);
  - explicit ``persistent=`` annotations always win;
  - anything else "requires closer inspection" — we raise
    :class:`UnclassifiedStateError` so the engineer must annotate, rather
    than guessing silently.
"""

from __future__ import annotations

from ..rtl.circuit import Circuit, RegInfo
from .threat_model import ThreatModel

__all__ = ["StateClassifier", "UnclassifiedStateError"]


class UnclassifiedStateError(Exception):
    """A counterexample touched state with no classification rule.

    Mirrors the paper's "rare counterexamples may involve state variables
    that are neither buffers in the interconnect nor obviously persistent
    registers in IPs. These cases require closer inspection" — the fix is
    an explicit ``persistent=``/``accessible=`` annotation on the
    register, or registration via :meth:`StateClassifier.annotate`.
    """


class StateClassifier:
    """Decides set membership for the UPEC-SSC procedure."""

    def __init__(self, threat_model: ThreatModel):
        self.tm = threat_model
        self.circuit: Circuit = threat_model.circuit
        self._overrides: dict[str, bool] = {}

    # -- manual escape hatch -------------------------------------------------

    def annotate(self, name: str, persistent: bool) -> None:
        """Record a manual S_pers decision for one state variable."""
        if name not in self.circuit.regs:
            raise KeyError(f"no register named {name!r}")
        self._overrides[name] = persistent

    # -- Definition 1 -----------------------------------------------------------

    def s_not_victim(self) -> set[str]:
        """All state variables outside the CPU (Def. 1).

        Conditionally secret memory words are *included*: their victim
        membership is symbolic, so the miter applies a per-word guard
        instead of removing them from the set.
        """
        return {
            name
            for name, info in self.circuit.regs.items()
            if info.meta.kind != "cpu"
        }

    def conditional_guard_info(self, name: str) -> tuple[str, int] | None:
        """(array, index) if the register is a conditionally-secret word."""
        info = self.circuit.regs[name]
        if info.meta.kind == "memory" and info.meta.array in self.tm.secret_arrays:
            assert info.meta.index is not None
            return info.meta.array, info.meta.index
        return None

    # -- Definition 2 -----------------------------------------------------------

    def in_s_pers(self, name: str) -> bool:
        """Whether a state variable belongs to ``S_pers`` (Def. 2)."""
        if name in self._overrides:
            return self._overrides[name]
        info = self.circuit.regs[name]
        meta = info.meta
        if meta.persistent is not None:
            if meta.persistent and meta.accessible is not None:
                return meta.accessible
            return meta.persistent
        if meta.kind == "interconnect":
            # Overwritten with every communication transaction (Sec. 3.4).
            return False
        if meta.kind == "memory":
            accessible = meta.accessible
            return bool(accessible) if accessible is not None else True
        if meta.kind == "ip":
            # Memory-mapped IP registers are readable by the attacker task
            # unless annotated otherwise.
            accessible = meta.accessible
            return True if accessible is None else bool(accessible)
        raise UnclassifiedStateError(
            f"state variable {name!r} (kind={meta.kind!r}, owner="
            f"{meta.owner!r}) appeared in a counterexample but has no "
            "S_pers classification; annotate it with persistent=True/False"
        )

    def split_by_persistence(
        self, names: set[str]
    ) -> tuple[set[str], set[str]]:
        """Partition ``names`` into (persistent, transient)."""
        pers = {name for name in names if self.in_s_pers(name)}
        return pers, names - pers

    def describe(self, name: str) -> str:
        """One-line human description of a state variable, for reports."""
        info: RegInfo = self.circuit.regs[name]
        tags = [f"kind={info.meta.kind}", f"owner={info.meta.owner or '<root>'}"]
        if self.conditional_guard_info(name) is not None:
            tags.append("conditionally-secret")
        try:
            tags.append("S_pers" if self.in_s_pers(name) else "transient")
        except UnclassifiedStateError:
            tags.append("UNCLASSIFIED")
        return f"{name} ({', '.join(tags)})"
