"""repro — reproduction of "MCU-Wide Timing Side Channels and Their
Detection" (Müller et al., DAC 2024).

The package implements the paper's formal method, UPEC-SSC, together
with every substrate it needs:

* :mod:`repro.rtl` — a word-level RTL modelling framework;
* :mod:`repro.sat` — a CDCL SAT solver (the decision procedure);
* :mod:`repro.aig` — and-inverter graphs, CNF encoding, bit-blasting;
* :mod:`repro.formal` — symbolic unrolling, IPC, BMC, k-induction;
* :mod:`repro.upec` — the paper's contribution: the 2-safety miter,
  Algorithm 1 and Algorithm 2, state classification, reports;
* :mod:`repro.verify` — the unified public API: one
  :class:`VerificationRequest` in, one :class:`Verdict` out, for every
  method (alg1, alg2, bmc, k-induction, ift-baseline);
* :mod:`repro.repair` — the closed repair loop: leak localization,
  parameterized countermeasure transforms, re-verification to SECURE;
* :mod:`repro.campaign` — declarative grids on pluggable executors
  (serial / fork / spawn / TCP workers), including repair-mode runs;
* :mod:`repro.soc` — a Pulpissimo-style MCU SoC case study (CPU, DMA,
  HWPE accelerator, timer, UART, GPIO, SPI, two memories, crossbar);
* :mod:`repro.sim` — a cycle-accurate simulator and testbench tools;
* :mod:`repro.attacks` — end-to-end three-phase attack demonstrations;
* :mod:`repro.ift` — the Information Flow Tracking comparison baseline.

Quickstart::

    from repro import FORMAL_TINY, verify

    verdict = verify(design=FORMAL_TINY)            # Algorithm 1
    assert verdict.vulnerable and verdict.leaking

    fixed = verify(design=FORMAL_TINY.replace(secure=True))
    assert fixed.secure

The pre-redesign entry points (``upec_ssc``, ``upec_ssc_unrolled``,
``bmc``, ``find_induction_depth``, ``bounded_ift_check``) remain
importable from this namespace as deprecated shims; they forward to
the same engines :func:`verify` drives.
"""

import warnings as _warnings

from .campaign import CampaignSpec, paper_spec, run_campaign
from .repair import RepairReport, RepairRequest, repair
from .soc import (
    ATTACK_DEMO,
    FORMAL_SMALL,
    FORMAL_TINY,
    SIM_DEFAULT,
    SocConfig,
    build_soc,
    expand_variants,
    named_config,
)
from .upec import (
    SscResult,
    StateClassifier,
    ThreatModel,
    UnrolledResult,
    VictimPort,
    format_result,
)
from .verify import (
    PreprocessConfig,
    VerdictCache,
    VerificationRequest,
    Verdict,
    Verifier,
    verify,
)

__version__ = "1.3.0"

#: Legacy entry points: top-level name -> (module, attribute, replacement).
#: Accessing one emits a DeprecationWarning and forwards to the original
#: implementation, which :func:`repro.verify.verify` drives internally.
_DEPRECATED_ENTRY_POINTS = {
    "upec_ssc": (
        "repro.upec.ssc", "upec_ssc",
        'repro.verify.verify(design=..., method="alg1")',
    ),
    "upec_ssc_unrolled": (
        "repro.upec.unrolled", "upec_ssc_unrolled",
        'repro.verify.verify(design=..., method="alg2")',
    ),
    "bmc": (
        "repro.formal.bmc", "bmc",
        'repro.verify.verify(design=..., method="bmc")',
    ),
    "find_induction_depth": (
        "repro.formal.induction", "find_induction_depth",
        'repro.verify.verify(design=..., method="k-induction")',
    ),
    "bounded_ift_check": (
        "repro.ift.engine", "bounded_ift_check",
        'repro.verify.verify(design=..., method="ift-baseline")',
    ),
}


def __getattr__(name: str):
    entry = _DEPRECATED_ENTRY_POINTS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr, replacement = entry
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} (or import the "
        f"implementation from {module_name})",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "ATTACK_DEMO",
    "FORMAL_SMALL",
    "FORMAL_TINY",
    "SIM_DEFAULT",
    "SocConfig",
    "build_soc",
    "expand_variants",
    "named_config",
    "CampaignSpec",
    "paper_spec",
    "run_campaign",
    "SscResult",
    "StateClassifier",
    "ThreatModel",
    "UnrolledResult",
    "VictimPort",
    "format_result",
    "PreprocessConfig",
    "VerificationRequest",
    "Verdict",
    "VerdictCache",
    "Verifier",
    "verify",
    "RepairReport",
    "RepairRequest",
    "repair",
    # deprecated shims (emit DeprecationWarning on access):
    "upec_ssc",
    "upec_ssc_unrolled",
    "bmc",
    "find_induction_depth",
    "bounded_ift_check",
    "__version__",
]
