"""repro — reproduction of "MCU-Wide Timing Side Channels and Their
Detection" (Müller et al., DAC 2024).

The package implements the paper's formal method, UPEC-SSC, together
with every substrate it needs:

* :mod:`repro.rtl` — a word-level RTL modelling framework;
* :mod:`repro.sat` — a CDCL SAT solver (the decision procedure);
* :mod:`repro.aig` — and-inverter graphs, CNF encoding, bit-blasting;
* :mod:`repro.formal` — symbolic unrolling, IPC, BMC, k-induction;
* :mod:`repro.upec` — the paper's contribution: the 2-safety miter,
  Algorithm 1 and Algorithm 2, state classification, reports;
* :mod:`repro.soc` — a Pulpissimo-style MCU SoC case study (CPU, DMA,
  HWPE accelerator, timer, UART, GPIO, SPI, two memories, crossbar);
* :mod:`repro.sim` — a cycle-accurate simulator and testbench tools;
* :mod:`repro.attacks` — end-to-end three-phase attack demonstrations;
* :mod:`repro.ift` — the Information Flow Tracking comparison baseline.

Quickstart::

    from repro import build_soc, FORMAL_TINY, upec_ssc

    soc = build_soc(FORMAL_TINY)                 # vulnerable SoC
    result = upec_ssc(soc.threat_model)
    assert result.vulnerable

    fixed = build_soc(FORMAL_TINY.replace(secure=True))
    assert upec_ssc(fixed.threat_model).secure
"""

from .campaign import CampaignSpec, paper_spec, run_campaign
from .soc import (
    ATTACK_DEMO,
    FORMAL_SMALL,
    FORMAL_TINY,
    SIM_DEFAULT,
    SocConfig,
    build_soc,
    expand_variants,
    named_config,
)
from .upec import (
    SscResult,
    StateClassifier,
    ThreatModel,
    UnrolledResult,
    VictimPort,
    format_result,
    upec_ssc,
    upec_ssc_unrolled,
)

__version__ = "1.1.0"

__all__ = [
    "ATTACK_DEMO",
    "FORMAL_SMALL",
    "FORMAL_TINY",
    "SIM_DEFAULT",
    "SocConfig",
    "build_soc",
    "expand_variants",
    "named_config",
    "CampaignSpec",
    "paper_spec",
    "run_campaign",
    "SscResult",
    "StateClassifier",
    "ThreatModel",
    "UnrolledResult",
    "VictimPort",
    "format_result",
    "upec_ssc",
    "upec_ssc_unrolled",
    "__version__",
]
