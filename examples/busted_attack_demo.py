#!/usr/bin/env python3
"""Attack demonstrations: the timing channels, measured in simulation.

Reproduces, on the cycle-accurate simulator:

* the Fig. 1 DMA+timer attack (the original BUSted shape), and
* the new HWPE+memory variant of Sec. 4.1 — which needs **no timer**,

then shows the countermeasure flattening the channel.

Run:  python examples/busted_attack_demo.py
"""

from repro import ATTACK_DEMO, build_soc
from repro.attacks import (
    analyze_channel,
    dma_timer_attack_sweep,
    hwpe_attack_sweep,
    run_dma_timer_attack,
)


def main() -> None:
    soc = build_soc(ATTACK_DEMO)

    print("=" * 72)
    print("Fig. 1 attack: DMA performs accesses, then starts the timer")
    print("=" * 72)
    single = run_dma_timer_attack(soc, victim_accesses=4, recording_cycles=96)
    from repro.attacks.phases import AttackHarness  # for type reference only

    for event in single.timeline:
        print(f"  cycle {event.cycle:>5}  [{event.phase:<11}] {event.description}")
    print()
    report = analyze_channel(dma_timer_attack_sweep(soc, max_accesses=8,
                                                    recording_cycles=96))
    print(report.format_table())

    print()
    print("=" * 72)
    print("Sec. 4.1 variant: HWPE + memory — no timer involved")
    print("=" * 72)
    timerless = build_soc(ATTACK_DEMO.replace(include_timer=False))
    report = analyze_channel(
        hwpe_attack_sweep(timerless, max_accesses=16, recording_cycles=60)
    )
    print(report.format_table())
    assert report.leaks, "the HWPE channel must be open without a timer"

    print()
    print("=" * 72)
    print("Countermeasure: victim confined to the private memory device")
    print("=" * 72)
    secured = build_soc(ATTACK_DEMO.replace(secure=True))
    report = analyze_channel(
        hwpe_attack_sweep(
            secured, max_accesses=16, victim_region="priv_ram",
            recording_cycles=60,
        )
    )
    print(report.format_table())
    assert not report.leaks, "the countermeasure must close the channel"


if __name__ == "__main__":
    main()
