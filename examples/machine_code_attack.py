#!/usr/bin/env python3
"""The HWPE+memory attack as real RV32 machine code on the full SoC.

The most faithful demonstration in this repository: attacker and victim
are RISC-V programs (assembled by :mod:`repro.soc.cpu.assembler`)
executing on the 32-bit simulation SoC with the RV32-subset core.  The
attacker task primes a memory region, programs the HWPE, "context
switches" to the victim task, and afterwards counts the overwritten
words — recovering how many shared-memory accesses the victim made.

Run:  python examples/machine_code_attack.py
"""

from repro import SIM_DEFAULT, build_soc
from repro.sim import Simulator
from repro.soc import hwpe as hwpe_regs
from repro.soc.cpu import assemble

PRIMED_WORDS = 48
VICTIM_SLOTS = 12


def firmware(soc, victim_accesses: int) -> str:
    """One binary: attacker prepare -> victim task -> attacker retrieve."""
    pub = soc.byte_addr("pub_ram")
    hwpe = soc.byte_addr("hwpe")
    primed = soc.byte_addr("pub_ram", 64)
    victim = soc.byte_addr("pub_ram", 32)
    priv = soc.byte_addr("priv_ram")
    result = soc.byte_addr("pub_ram", 255)
    idle_slots = VICTIM_SLOTS - victim_accesses
    return f"""
    # ---- attacker: preparation phase --------------------------------
        li   s0, {primed}          # primed region
        li   t1, 0
        li   t2, {PRIMED_WORDS}
    prime:
        slli t3, t1, 2
        add  t3, t3, s0
        sw   x0, 0(t3)             # zero the ruler
        addi t1, t1, 1
        bne  t1, t2, prime

        li   s1, {hwpe}
        li   t0, {pub}
        sw   t0, {4 * hwpe_regs.REG_SRC}(s1)
        li   t0, {soc.word_addr('pub_ram', 64)}
        sw   t0, {4 * hwpe_regs.REG_DST}(s1)
        li   t0, {PRIMED_WORDS}
        sw   t0, {4 * hwpe_regs.REG_LEN}(s1)
        li   t0, 0xA5
        sw   t0, {4 * hwpe_regs.REG_COEF}(s1)
        li   t0, {1 | (hwpe_regs.OP_XOR << 1)}
        sw   t0, {4 * hwpe_regs.REG_CTRL}(s1)   # start the spy

    # ---- context switch, victim task ---------------------------------
        li   s2, {victim}          # victim's shared-memory buffer
        li   s3, {priv}            # private scratch (no contention)
        li   t1, 0
        li   t2, {victim_accesses}
        li   t4, {idle_slots}
        li   t5, 0xBEE
        beq  t2, x0, victim_idle
    victim_work:
        sw   t5, 0(s2)             # protected accesses: contend with HWPE
        addi t1, t1, 1
        bne  t1, t2, victim_work
    victim_idle:
        li   t1, 0
        beq  t4, x0, victim_done
    victim_pad:
        sw   t5, 0(s3)             # same instruction count, other device
        addi t1, t1, 1
        bne  t1, t4, victim_pad
    victim_done:

    # ---- context switch, attacker: retrieval phase ---------------------
        sw   x0, {4 * hwpe_regs.REG_CTRL}(s1)   # freeze the ruler
        li   t1, 0
        li   t2, {PRIMED_WORDS}
        li   a0, 0                 # overwritten-word count
    scan:
        slli t3, t1, 2
        add  t3, t3, s0
        lw   t4, 0(t3)
        beq  t4, x0, not_written
        addi a0, a0, 1
    not_written:
        addi t1, t1, 1
        bne  t1, t2, scan
        li   t6, {result}
        sw   a0, 0(t6)             # publish the observation
    halt:
        j    halt
    """


def run(soc, victim_accesses: int) -> int:
    sim = Simulator(soc.circuit)
    for addr, word in assemble(firmware(soc, victim_accesses)).items():
        sim.mems["soc.cpu.rom"][addr // 4] = word
    sim.run(3500)
    return sim.peek_mem("soc.pub_ram.mem", 255)


def main() -> None:
    soc = build_soc(SIM_DEFAULT)
    print("HWPE+memory attack, attacker and victim as RV32 machine code")
    print(f"{'victim accesses':>16} {'attacker observes':>18}")
    print("-" * 36)
    observations = {}
    for n in range(0, VICTIM_SLOTS + 1, 2):
        observations[n] = run(soc, n)
        print(f"{n:>16} {observations[n]:>18}")
    values = [observations[n] for n in sorted(observations)]
    assert values[0] >= values[-1]
    assert len(set(values)) > 1, "the machine-code channel must be open"
    print()
    print("The attacker's count decreases with victim activity: the victim's")
    print("memory access pattern leaks through HWPE progress - no timer used.")


if __name__ == "__main__":
    main()
