#!/usr/bin/env python3
"""Quickstart: detect an MCU-wide timing side channel, fix it, prove it.

Builds the Pulpissimo-style SoC of the paper's case study (Sec. 4),
runs UPEC-SSC Algorithm 1 on it (vulnerable), then applies the
countermeasure of Sec. 4.2 and proves the fixed SoC secure.

Run:  python examples/quickstart.py
"""

from repro import FORMAL_TINY, StateClassifier, build_soc, format_result, upec_ssc
from repro.soc.invariants import verify_soc_invariants


def main() -> None:
    print("=" * 72)
    print("UPEC-SSC on the baseline (vulnerable) SoC")
    print("=" * 72)
    soc = build_soc(FORMAL_TINY)
    classifier = StateClassifier(soc.threat_model)
    result = upec_ssc(soc.threat_model, classifier=classifier)
    print(format_result(result, classifier))
    assert result.vulnerable, "the baseline SoC must be vulnerable"

    print()
    print("=" * 72)
    print("Applying the countermeasure (Sec. 4.2) and re-proving")
    print("=" * 72)
    fixed = build_soc(FORMAL_TINY.replace(secure=True))
    invariants = verify_soc_invariants(fixed)
    print(f"reachability invariants proven by 1-induction: {invariants.proved}")
    classifier = StateClassifier(fixed.threat_model)
    result = upec_ssc(fixed.threat_model, classifier=classifier)
    print(format_result(result, classifier))
    assert result.secure, "the countermeasure must close the channel"
    print()
    print("Done: vulnerability detected, countermeasure formally verified.")


if __name__ == "__main__":
    main()
