#!/usr/bin/env python3
"""Quickstart: detect an MCU-wide timing side channel, fix it, prove it.

One API for everything: build a :class:`repro.verify.Verifier` on the
Pulpissimo-style SoC of the paper's case study (Sec. 4), ask it
``method="alg1"`` (vulnerable), then apply the countermeasure of
Sec. 4.2 and re-ask — the invariants proof and the security proof are
the same call with a different ``method=``.

Run:  python examples/quickstart.py
"""

from repro import FORMAL_TINY
from repro.upec.report import format_verdict
from repro.verify import SECURE, VULNERABLE, Verifier


def main() -> None:
    print("=" * 72)
    print("UPEC-SSC on the baseline (vulnerable) SoC")
    print("=" * 72)
    baseline = Verifier(FORMAL_TINY)
    verdict = baseline.verify(method="alg1")
    print(format_verdict(verdict, baseline.classifier))
    assert verdict.status == VULNERABLE, "the baseline SoC must be vulnerable"

    print()
    print("=" * 72)
    print("Applying the countermeasure (Sec. 4.2) and re-proving")
    print("=" * 72)
    fixed = Verifier(FORMAL_TINY.replace(secure=True))
    invariants = fixed.verify(method="k-induction", depth=1,
                              record_trace=False)
    print(f"reachability invariants proven by 1-induction: "
          f"{invariants.raw_verdict == 'proved'}")
    verdict = fixed.verify(method="alg1")
    print(format_verdict(verdict, fixed.classifier))
    assert verdict.status == SECURE, "the countermeasure must close the channel"
    print()
    print("Done: vulnerability detected, countermeasure formally verified.")


if __name__ == "__main__":
    main()
