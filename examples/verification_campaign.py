#!/usr/bin/env python3
"""A security verification campaign across SoC design variants.

What a verification engineer adopting UPEC-SSC would run: the paper's
variant grid (one declarative :class:`repro.campaign.CampaignSpec`) is
fanned out across worker processes — every variant checked with
Algorithm 1 and contrasted against the IFT baseline — then the
vulnerable baseline is debugged with Algorithm 2's explicit
counterexample trace.

Run:  python examples/verification_campaign.py
"""

from repro import FORMAL_TINY, StateClassifier, build_soc, upec_ssc_unrolled
from repro.campaign import paper_spec, run_campaign
from repro.upec.report import (
    format_campaign,
    format_counterexample,
    format_job_line,
)

WORKERS = 2


def main() -> None:
    spec = paper_spec()  # Sec. 4 variant table + the Sec. 5 IFT contrast
    jobs = spec.expand()
    print(f"campaign {spec.name!r}: {len(jobs)} jobs on {WORKERS} workers")
    campaign = run_campaign(
        spec, workers=WORKERS,
        on_result=lambda r: print(format_job_line(r), flush=True),
    )
    print()
    print(format_campaign(
        campaign.results,
        title=f"paper variant table ({campaign.wall_seconds:.1f} s wall)",
    ))

    verdicts = campaign.verdicts()
    assert verdicts["baseline alg1"] == "vulnerable"
    assert verdicts["secured alg1"] == "secure"
    # The IFT baseline cannot discriminate the fixed design (Sec. 5):
    # plain taint tracking reports a flow on baseline *and* secured.
    assert verdicts["baseline ift-baseline@k2"] == "flow"
    assert verdicts["secured ift-baseline@k2"] == "flow"
    print()
    print("UPEC-SSC separates the two designs; plain IFT flags both.")

    print()
    print("=" * 72)
    print("Debugging the baseline with Algorithm 2 (explicit counterexample)")
    print("=" * 72)
    soc = build_soc(FORMAL_TINY)
    classifier = StateClassifier(soc.threat_model)
    unrolled = upec_ssc_unrolled(
        soc.threat_model, classifier=classifier, max_depth=3
    )
    assert unrolled.vulnerable
    print(f"vulnerability exposed at unrolling depth k = {unrolled.reached_depth}")
    print()
    print(format_counterexample(unrolled.counterexample, classifier,
                                max_signals=12))


if __name__ == "__main__":
    main()
