#!/usr/bin/env python3
"""A security verification campaign across SoC design variants.

What a verification engineer adopting UPEC-SSC would run: the paper's
variant grid (one declarative :class:`repro.campaign.CampaignSpec`) is
fanned out across a pluggable executor — fork pool here; swap in
``SpawnPoolExecutor`` or ``TcpExecutor([...])`` without touching the
spec — every variant checked with Algorithm 1 and contrasted against
the IFT baseline, then the vulnerable baseline is debugged with
Algorithm 2's explicit counterexample trace through the unified
:mod:`repro.verify` API.

Run:  python examples/verification_campaign.py
"""

from repro import FORMAL_TINY
from repro.campaign import ForkPoolExecutor, paper_spec, run_campaign
from repro.upec.report import (
    format_campaign,
    format_counterexample,
    format_job_line,
)
from repro.verify import VerdictCache, Verifier

WORKERS = 2


def main() -> None:
    spec = paper_spec()  # Sec. 4 variant table + the Sec. 5 IFT contrast
    jobs = spec.expand()
    print(f"campaign {spec.name!r}: {len(jobs)} jobs on a "
          f"{WORKERS}-worker fork pool")
    campaign = run_campaign(
        spec,
        executor=ForkPoolExecutor(WORKERS),
        cache=VerdictCache(),  # content-addressed: repeats are free
        on_result=lambda r: print(format_job_line(r), flush=True),
    )
    print()
    print(format_campaign(
        campaign.results,
        title=f"paper variant table ({campaign.wall_seconds:.1f} s wall, "
              f"executor={campaign.executor})",
    ))

    verdicts = campaign.verdicts()
    assert verdicts["baseline alg1"] == "vulnerable"
    assert verdicts["secured alg1"] == "secure"
    # The IFT baseline cannot discriminate the fixed design (Sec. 5):
    # plain taint tracking reports a flow on baseline *and* secured.
    assert verdicts["baseline ift-baseline@k2"] == "flow"
    assert verdicts["secured ift-baseline@k2"] == "flow"
    print()
    print("UPEC-SSC separates the two designs; plain IFT flags both.")

    print()
    print("=" * 72)
    print("Debugging the baseline with Algorithm 2 (explicit counterexample)")
    print("=" * 72)
    verifier = Verifier(FORMAL_TINY)
    verdict = verifier.verify(method="alg2", depth=3)
    unrolled = verdict.result_object()
    assert verdict.vulnerable
    print(f"vulnerability exposed at unrolling depth "
          f"k = {unrolled.reached_depth}")
    print()
    print(format_counterexample(unrolled.counterexample,
                                verifier.classifier, max_signals=12))


if __name__ == "__main__":
    main()
