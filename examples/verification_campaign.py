#!/usr/bin/env python3
"""A security verification campaign across SoC design variants.

What a verification engineer adopting UPEC-SSC would run: every design
variant is checked with Algorithm 1, the vulnerable one is debugged with
Algorithm 2's explicit counterexample trace, and the IFT baseline shows
why a non-relational method cannot discriminate the fixed design.

Run:  python examples/verification_campaign.py
"""

import time

from repro import FORMAL_TINY, StateClassifier, build_soc, upec_ssc, upec_ssc_unrolled
from repro.ift import bounded_ift_check
from repro.upec.report import format_counterexample

VARIANTS = [
    ("baseline (Sec. 4.1)", FORMAL_TINY),
    ("no timer IP (E5)", FORMAL_TINY.replace(include_timer=False)),
    ("DMA only, no HWPE (E9)", FORMAL_TINY.replace(include_hwpe=False)),
    ("countermeasure (Sec. 4.2)", FORMAL_TINY.replace(secure=True)),
]


def main() -> None:
    print(f"{'variant':<28} {'verdict':<12} {'iters':>5} {'time[s]':>8} leaking")
    print("-" * 78)
    results = {}
    for name, cfg in VARIANTS:
        soc = build_soc(cfg)
        start = time.perf_counter()
        result = upec_ssc(soc.threat_model)
        elapsed = time.perf_counter() - start
        results[name] = (soc, result)
        leak = ", ".join(sorted(result.leaking)[:2]) or "-"
        print(
            f"{name:<28} {result.verdict:<12} {len(result.iterations):>5} "
            f"{elapsed:>8.1f} {leak}"
        )

    print()
    print("=" * 72)
    print("Debugging the baseline with Algorithm 2 (explicit counterexample)")
    print("=" * 72)
    soc = build_soc(FORMAL_TINY)
    classifier = StateClassifier(soc.threat_model)
    unrolled = upec_ssc_unrolled(
        soc.threat_model, classifier=classifier, max_depth=3
    )
    assert unrolled.vulnerable
    print(f"vulnerability exposed at unrolling depth k = {unrolled.reached_depth}")
    print()
    print(format_counterexample(unrolled.counterexample, classifier,
                                max_signals=12))

    print()
    print("=" * 72)
    print("IFT baseline (Sec. 5): cannot discriminate the fixed design")
    print("=" * 72)
    for name in ("baseline (Sec. 4.1)", "countermeasure (Sec. 4.2)"):
        soc, upec_result = results[name]
        page_region = "priv_ram" if soc.config.secure else "pub_ram"
        page = soc.address_map.pages_of(
            page_region, soc.config.page_bits
        ).start
        ift = bounded_ift_check(soc.threat_model, depth=2, victim_page=page)
        print(
            f"{name:<28} UPEC-SSC: {upec_result.verdict:<11} "
            f"IFT: {'flow reported' if ift.flows else 'no flow'}"
        )
    print()
    print("UPEC-SSC separates the two designs; plain IFT flags both.")


if __name__ == "__main__":
    main()
